(* Tests for the scheduling service: cache hits byte-identical to cold
   misses (and to the one-shot export), content-addressed key collision
   resistance, replan parity with Cyclo.Degrade, LRU bounds, batch and
   socket determinism, and total protocol parsing. *)

module P = Service.Protocol
module Engine = Service.Engine
module Lru = Service.Lru
module Cachekey = Cyclo.Cachekey

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let fig7 () = Option.get (Workloads.Suite.find "fig7")

let sched_line ?(id = 1) ?(knobs = P.default_knobs) workload arch =
  P.request_to_json ~id
    (P.Schedule { graph = P.Workload workload; arch; knobs })

let replace ~sub ~by s =
  let ls = String.length sub and n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i <= n - ls do
    if String.sub s !i ls = sub then begin
      Buffer.add_string buf by;
      i := !i + ls
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.add_substring buf s !i (n - !i);
  Buffer.contents buf

(* The raw bytes of the embedded schedule object: everything after
   "schedule": up to the reply's closing brace. *)
let schedule_field line =
  let marker = "\"schedule\":" in
  let lm = String.length marker in
  let rec find i =
    if i + lm > String.length line then
      Alcotest.fail "reply has no schedule field"
    else if String.sub line i lm = marker then i + lm
    else find (i + 1)
  in
  let start = find 0 in
  String.sub line start (String.length line - start - 1)

(* {2 Golden byte-identity} *)

let test_hit_byte_identical_to_cold_miss () =
  let e = Engine.create () in
  let line = sched_line "fig7" "mesh:2x4" in
  let miss, _ = Engine.handle_line e line in
  let hit, _ = Engine.handle_line e line in
  check_bool "miss is uncached" true
    (replace ~sub:"\"cached\":false" ~by:"" miss <> miss);
  check_str "hit differs only in the cached flag"
    (replace ~sub:"\"cached\":false" ~by:"\"cached\":true" miss)
    hit;
  check "one miss" 1 (Engine.stats e).P.misses;
  check "one hit" 1 (Engine.stats e).P.hits

let test_reply_matches_one_shot_export () =
  let e = Engine.create () in
  let reply, _ = Engine.handle_line e (sched_line "fig7" "mesh:2x4") in
  let topo = Result.get_ok (Topology.of_spec "mesh:2x4") in
  let direct =
    Cyclo.Export.to_json
      (Cyclo.Compaction.run_on ~mode:Cyclo.Remap.With_relaxation (fig7 ())
         topo)
        .Cyclo.Compaction.best
  in
  check_str "embedded schedule is the one-shot export" direct
    (schedule_field reply)

(* {2 Cache keys} *)

type cfg = {
  mode : Cyclo.Remap.mode;
  passes : int option;
  slowdown : int;
  transport : Cachekey.transport;
  arch : string;
  speeds : [ `No | `Uniform2 | `Alternating ];
}

(* every arch here has 8 processors, so the speeds variants apply to all *)
let cfg_gen =
  QCheck.Gen.(
    let* mode =
      oneofl [ Cyclo.Remap.With_relaxation; Cyclo.Remap.Without_relaxation ]
    in
    let* passes = oneofl [ None; Some 8; Some 16 ] in
    let* slowdown = oneofl [ 1; 2; 3 ] in
    let* transport = oneofl [ Cachekey.Store_and_forward; Cachekey.Wormhole ] in
    let* arch =
      oneofl [ "mesh:2x4"; "ring:8"; "complete:8"; "hypercube:3"; "linear:8" ]
    in
    let* speeds = oneofl [ `No; `Uniform2; `Alternating ] in
    return { mode; passes; slowdown; transport; arch; speeds })

let digest_of_cfg c =
  let topo = Result.get_ok (Topology.of_spec c.arch) in
  let speeds =
    match c.speeds with
    | `No -> None
    | `Uniform2 -> Some (Array.make (Topology.n_processors topo) 2)
    | `Alternating ->
        Some
          (Array.init (Topology.n_processors topo) (fun i -> 1 + (i mod 2)))
  in
  Cachekey.digest ?speeds ?passes:c.passes ~slowdown:c.slowdown ~mode:c.mode
    ~transport:c.transport (fig7 ()) topo

let prop_digest_injective_across_knobs =
  QCheck.Test.make ~count:300
    ~name:"equal digests exactly for equal knob configurations"
    (QCheck.make (QCheck.Gen.pair cfg_gen cfg_gen))
    (fun (a, b) -> digest_of_cfg a = digest_of_cfg b = (a = b))

let test_digest_covers_graph_identity () =
  let topo = Result.get_ok (Topology.of_spec "complete:8") in
  let digest g =
    Cachekey.digest ~mode:Cyclo.Remap.With_relaxation
      ~transport:Cachekey.Store_and_forward g topo
  in
  let elliptic = Option.get (Workloads.Suite.find "elliptic") in
  check_bool "different graphs, different keys" true
    (digest (fig7 ()) <> digest elliptic);
  check_bool "slowed-down graph changes the key" true
    (digest (fig7 ()) <> digest (Dataflow.Transform.slowdown (fig7 ()) 2))

let test_replan_digest_chains () =
  let d1 = Cachekey.replan_digest ~parent:"p" ~failed_pes:[ 3 ] ~failed_links:[] in
  let d1' =
    Cachekey.replan_digest ~parent:"p" ~failed_pes:[ 3; 3 ] ~failed_links:[]
  in
  check_str "duplicate faults collapse" d1 d1';
  let d2 =
    Cachekey.replan_digest ~parent:d1 ~failed_pes:[ 4 ] ~failed_links:[]
  in
  check_bool "chained replan has its own key" true (d1 <> d2);
  check_str "link order is normalised"
    (Cachekey.replan_digest ~parent:"p" ~failed_pes:[]
       ~failed_links:[ (1, 2) ])
    (Cachekey.replan_digest ~parent:"p" ~failed_pes:[]
       ~failed_links:[ (2, 1) ])

(* {2 Replan parity with Cyclo.Degrade} *)

let test_replan_matches_degrade () =
  let topo = Result.get_ok (Topology.of_spec "mesh:2x4") in
  let best =
    (Cyclo.Compaction.run_on (fig7 ()) topo).Cyclo.Compaction.best
  in
  let plan =
    Result.get_ok
      (Cyclo.Degrade.replan best topo ~failed_pes:[ 2 ] ~failed_links:[])
  in
  let e = Engine.create () in
  let first, _ = Engine.handle_line e (sched_line "fig7" "mesh:2x4") in
  let session =
    match P.parse_reply first with
    | Ok (P.Scheduled { session; _ }) -> session
    | _ -> Alcotest.fail "expected a schedule reply"
  in
  (* wire ids are 1-based: pe 3 on the wire is pe 2 internally *)
  let reply, _ =
    Engine.handle_line e
      (P.request_to_json ~id:2
         (P.Replan { session; fail_pes = [ 3 ]; fail_links = [] }))
  in
  check_str "replan schedule equals Degrade.replan's"
    (Cyclo.Export.to_json plan.Cyclo.Degrade.schedule)
    (schedule_field reply);
  match P.parse_reply reply with
  | Ok (P.Replanned r) ->
      check "migration cost" plan.Cyclo.Degrade.migration_cost
        r.migration_cost;
      check "moved" (List.length plan.Cyclo.Degrade.moved) r.moved;
      check "surviving" (Array.length plan.Cyclo.Degrade.surviving)
        r.surviving;
      check_str "strategy"
        (match plan.Cyclo.Degrade.strategy with
        | Cyclo.Degrade.Patched -> "patched"
        | Cyclo.Degrade.Rebuilt -> "rebuilt")
        r.strategy;
      check_bool "first replan is a miss" false r.cached;
      let again, _ =
        Engine.handle_line e
          (P.request_to_json ~id:2
             (P.Replan { session; fail_pes = [ 3 ]; fail_links = [] }))
      in
      check_str "repeat replan is a byte-identical hit"
        (replace ~sub:"\"cached\":false" ~by:"\"cached\":true" reply)
        again
  | _ -> Alcotest.fail "expected a replan reply"

let test_replan_unknown_session () =
  let e = Engine.create () in
  let reply, _ =
    Engine.handle_line e
      (P.request_to_json ~id:9
         (P.Replan
            { session = "feedfacefeedfacefeedfacefeedface"; fail_pes = [ 1 ];
              fail_links = [] }))
  in
  match P.parse_reply reply with
  | Ok (P.Error_reply { id; err }) ->
      check "echoes id" 9 (Option.get id);
      check_str "code" "unknown_session" err.P.code
  | _ -> Alcotest.fail "expected an error reply"

(* {2 LRU} *)

let test_lru_eviction_order () =
  let l = Lru.create ~capacity:2 in
  Lru.add l "a" 1;
  Lru.add l "b" 2;
  ignore (Lru.find l "a");
  (* refreshes a, so b is the victim *)
  Lru.add l "c" 3;
  check "bound respected" 2 (Lru.length l);
  check "one eviction" 1 (Lru.evictions l);
  check_bool "b evicted" true (Lru.find l "b" = None);
  check_bool "a survived" true (Lru.find l "a" = Some 1);
  Alcotest.(check (list string)) "mru order" [ "a"; "c" ] (Lru.keys l);
  Lru.add l "a" 10;
  check "replace does not evict" 2 (Lru.length l);
  check_bool "replaced value" true (Lru.find l "a" = Some 10)

let test_engine_respects_cache_bound () =
  let e = Engine.create ~capacity:2 () in
  List.iter
    (fun arch -> ignore (Engine.handle_line e (sched_line "fig7" arch)))
    [ "ring:4"; "linear:4"; "complete:4" ];
  let s = Engine.stats e in
  check "entries bounded" 2 s.P.entries;
  check "eviction counted" 1 s.P.evictions;
  check "capacity reported" 2 s.P.capacity;
  (* the first arch was evicted: asking again is a miss, not a hit *)
  ignore (Engine.handle_line e (sched_line "fig7" "ring:4"));
  check "re-request misses" 4 (Engine.stats e).P.misses

(* {2 Batch determinism} *)

let batch_lines =
  [
    sched_line ~id:1 "fig7" "mesh:2x4";
    sched_line ~id:2 "fig7" "ring:8";
    sched_line ~id:3 "fig7" "mesh:2x4";
    "not json at all";
    sched_line ~id:4 "fig7" "mesh:2x4";
    P.request_to_json ~id:5 P.Stats;
  ]

let test_batch_matches_sequential () =
  let seq_engine = Engine.create () in
  let sequential = List.map (Engine.handle_line seq_engine) batch_lines in
  List.iter
    (fun domains ->
      let e = Engine.create () in
      let batched = Engine.handle_batch ~domains e batch_lines in
      List.iteri
        (fun i ((b, _), (s, _)) ->
          check_str (Printf.sprintf "reply %d (domains=%d)" i domains) s b)
        (List.combine batched sequential);
      check "same hits" (Engine.stats seq_engine).P.hits (Engine.stats e).P.hits;
      check "same misses" (Engine.stats seq_engine).P.misses
        (Engine.stats e).P.misses;
      Alcotest.(check (list string))
        "same cache keys"
        (Engine.cache_keys seq_engine) (Engine.cache_keys e))
    [ 1; 2; 4 ]

(* {2 Protocol totality (socket-level fuzz lives in CI)} *)

let test_malformed_lines_become_error_replies () =
  let e = Engine.create () in
  let expect code line =
    let reply, continue = Engine.handle_line e line in
    check_bool (Printf.sprintf "%S keeps serving" line) true
      (continue = `Continue);
    match P.parse_reply reply with
    | Ok (P.Error_reply { err; _ }) ->
        check_str (Printf.sprintf "code for %S" line) code err.P.code
    | _ -> Alcotest.fail (Printf.sprintf "%S: expected an error reply" line)
  in
  expect "parse" "";
  expect "parse" "garbage";
  expect "parse" "{\"rpc\":\"ccsched-rpc/1\",\"id\":1,\"op\":";
  expect "version" "{}";
  expect "version" "{\"rpc\":\"ccsched-rpc/9\",\"id\":1,\"op\":\"stats\"}";
  expect "bad_request" "{\"rpc\":\"ccsched-rpc/1\",\"op\":\"stats\"}";
  expect "bad_request" "{\"rpc\":\"ccsched-rpc/1\",\"id\":-3,\"op\":\"stats\"}";
  expect "bad_request" "{\"rpc\":\"ccsched-rpc/1\",\"id\":1,\"op\":\"frobnicate\"}";
  expect "bad_request" "{\"rpc\":\"ccsched-rpc/1\",\"id\":1,\"op\":\"schedule\"}";
  expect "bad_request"
    "{\"rpc\":\"ccsched-rpc/1\",\"id\":1,\"op\":\"schedule\",\"workload\":\"fig7\",\"arch\":\"blob:9\"}";
  expect "bad_request"
    "{\"rpc\":\"ccsched-rpc/1\",\"id\":1,\"op\":\"schedule\",\"workload\":\"nope\",\"arch\":\"ring:4\"}";
  expect "bad_graph"
    "{\"rpc\":\"ccsched-rpc/1\",\"id\":1,\"op\":\"schedule\",\"graph\":\"not a csdfg\",\"arch\":\"ring:4\"}";
  expect "bad_request"
    "{\"rpc\":\"ccsched-rpc/1\",\"id\":1,\"op\":\"replan\",\"session\":\"x\"}";
  expect "bad_request"
    "{\"rpc\":\"ccsched-rpc/1\",\"id\":1,\"op\":\"schedule\",\"workload\":\"fig7\",\"arch\":\"ring:4\",\"speeds\":[1,2]}";
  expect "bad_request"
    "{\"rpc\":\"ccsched-rpc/1\",\"id\":1,\"op\":\"stats\",\"trace\":1}"

let prop_parse_request_total =
  QCheck.Test.make ~count:500 ~name:"parse_request never raises"
    QCheck.(string_of_size (QCheck.Gen.int_range 0 80))
    (fun s ->
      match P.parse_request s with Ok _ | Error _ -> true)

let test_inline_graph_round_trips () =
  (* an inline graph goes through json_escape (newlines!) and back *)
  let text = Dataflow.Io.to_string (fig7 ()) in
  let line =
    P.request_to_json ~id:7
      (P.Schedule
         { graph = P.Inline text; arch = "mesh:2x4"; knobs = P.default_knobs })
  in
  let e = Engine.create () in
  let inline_reply, _ = Engine.handle_line e line in
  let named_reply, _ = Engine.handle_line e (sched_line ~id:7 "fig7" "mesh:2x4") in
  check_str "inline fig7 equals the named workload (a cache hit)"
    (replace ~sub:"\"cached\":false" ~by:"\"cached\":true" inline_reply)
    named_reply

(* {2 Telemetry: metrics, health, trace} *)

let test_engine_metrics_and_health () =
  Obs.Counters.enable ();
  Obs.Histogram.enable ();
  let e = Engine.create () in
  ignore (Engine.handle_line e (sched_line "fig7" "ring:8"));
  ignore (Engine.handle_line e (sched_line "fig7" "ring:8"));
  let reply, _ = Engine.handle_line e (P.request_to_json ~id:3 P.Metrics) in
  (match P.parse_reply reply with
  | Ok (P.Metrics_reply { id; body }) -> (
      check "echoes id" 3 id;
      match Obs.Exposition.parse body with
      | Error m -> Alcotest.fail ("scrape rejected by strict parser: " ^ m)
      | Ok fams ->
          List.iter
            (fun raw ->
              let n = Obs.Exposition.metric_name raw in
              check_bool (n ^ " present") true
                (Obs.Exposition.find fams n <> None))
            [
              "service.requests"; "service.cache_hits"; "service.cache_misses";
              "service.cache_evictions";
            ];
          Alcotest.(check (option (float 0.)))
            "hit counter visible" (Some 1.)
            (Obs.Exposition.value fams
               (Obs.Exposition.metric_name "service.cache_hits")))
  | _ -> Alcotest.fail "expected a metrics reply");
  let hreply, _ = Engine.handle_line e (P.request_to_json ~id:4 P.Health) in
  (match P.parse_reply hreply with
  | Ok (P.Health_reply { id; health }) ->
      check "echoes id" 4 id;
      check_str "build" "ccsched/1.0.0" health.P.build;
      check "requests counted" 4 health.P.rpc_requests;
      Alcotest.(check (float 1e-9)) "hit rate" 0.5 health.P.hit_rate;
      check "one cached entry" 1 health.P.cache_entries;
      check "capacity" 256 health.P.cache_capacity;
      check_str "no replan yet" "none" health.P.last_replan
  | _ -> Alcotest.fail "expected a health reply");
  Obs.Counters.disable ();
  Obs.Histogram.disable ()

let contains line sub =
  let ls = String.length sub and n = String.length line in
  let rec go i = i <= n - ls && (String.sub line i ls = sub || go (i + 1)) in
  go 0

let strip_trace line =
  let marker = ",\"trace\":[" in
  let lm = String.length marker in
  let rec find i =
    if i + lm > String.length line then
      Alcotest.fail "reply has no trace field"
    else if String.sub line i lm = marker then i
    else find (i + 1)
  in
  String.sub line 0 (find 0) ^ "}"

let traced_sched_line ~id workload arch =
  P.request_to_json ~trace:true ~id
    (P.Schedule
       { graph = P.Workload workload; arch; knobs = P.default_knobs })

let test_traced_reply_byte_identity () =
  let e = Engine.create () in
  ignore (Engine.handle_line e (sched_line ~id:5 "fig7" "mesh:2x4"));
  let untraced, _ = Engine.handle_line e (sched_line ~id:5 "fig7" "mesh:2x4") in
  let traced, _ =
    Engine.handle_line e (traced_sched_line ~id:5 "fig7" "mesh:2x4")
  in
  check_str "traced hit strips back to the untraced bytes" untraced
    (strip_trace traced);
  List.iter
    (fun span ->
      check_bool (span ^ " span present") true
        (contains traced (Printf.sprintf "{\"span\":\"%s\",\"ns\":" span)))
    [ "parse"; "resolve"; "cache_lookup"; "export" ];
  (* a traced miss carries the compaction span *)
  let traced_miss, _ =
    Engine.handle_line e (traced_sched_line ~id:6 "fig7" "ring:8")
  in
  check_bool "compaction span on a miss" true
    (contains traced_miss "{\"span\":\"compaction\",\"ns\":");
  (* stats requests trace too, and the batch path matches sequential *)
  let batch =
    Engine.handle_batch ~domains:2 (Engine.create ())
      [
        sched_line ~id:5 "fig7" "mesh:2x4";
        sched_line ~id:5 "fig7" "mesh:2x4";
        traced_sched_line ~id:5 "fig7" "mesh:2x4";
      ]
  in
  (match batch with
  | [ (_, _); (hit, _); (traced_hit, _) ] ->
      check_str "batch traced hit strips to the batch untraced hit" hit
        (strip_trace traced_hit)
  | _ -> Alcotest.fail "expected three batch replies")

(* {2 The socket itself} *)

let with_server f =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ccsched-test-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let ready = Atomic.make false in
  let srv =
    Domain.spawn (fun () ->
        Service.Server.run
          ~on_ready:(fun () -> Atomic.set ready true)
          {
            Service.Server.socket_path = path;
            capacity = 8;
            domains = Some 1;
            max_clients = 4;
          })
  in
  let rec wait n =
    if not (Atomic.get ready) then
      if n = 0 then Alcotest.fail "server never became ready"
      else begin
        Unix.sleepf 0.01;
        wait (n - 1)
      end
  in
  wait 1000;
  Fun.protect
    ~finally:(fun () ->
      match Domain.join srv with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    (fun () -> f path)

let connect_exn path =
  match Service.Client.connect path with
  | Ok c -> c
  | Error e -> Alcotest.fail (Service.Client.error_to_string e)

let rpc_exn c line =
  match Service.Client.rpc_line c line with
  | Ok reply -> reply
  | Error e -> Alcotest.fail (Service.Client.error_to_string e)

let test_socket_round_trip () =
  with_server @@ fun path ->
  let c1 = connect_exn path in
  let c2 = connect_exn path in
  let line = sched_line "fig7" "ring:8" in
  let r1 = rpc_exn c1 line in
  let r2 = rpc_exn c2 line in
  check_str "two clients, same bytes modulo the cached flag"
    (replace ~sub:"\"cached\":false" ~by:"\"cached\":true" r1)
    (replace ~sub:"\"cached\":false" ~by:"\"cached\":true" r2);
  (match P.parse_reply (rpc_exn c2 (P.request_to_json ~id:2 P.Stats)) with
  | Ok (P.Stats_reply { stats; _ }) ->
      check "one schedule miss over the wire" 1 stats.P.misses;
      check "requests counted" 3 stats.P.requests
  | _ -> Alcotest.fail "expected stats");
  Service.Client.close c1;
  match P.parse_reply (rpc_exn c2 (P.request_to_json ~id:3 P.Shutdown)) with
  | Ok (P.Shutdown_ack _) -> Service.Client.close c2
  | _ -> Alcotest.fail "expected a shutdown ack"

(* Two clients against one daemon, one of them tracing: the traced
   reply must be byte-identical to the untraced one up to the trailing
   trace field, and health/metrics answer over the wire. *)
let test_socket_trace_identity () =
  with_server @@ fun path ->
  let c1 = connect_exn path in
  let c2 = connect_exn path in
  let line = sched_line ~id:4 "fig7" "mesh:2x4" in
  ignore (rpc_exn c1 line);
  (* cold miss *)
  let untraced = rpc_exn c1 line in
  let traced = rpc_exn c2 (traced_sched_line ~id:4 "fig7" "mesh:2x4") in
  check_str "other client's traced hit strips to the untraced bytes"
    untraced (strip_trace traced);
  check_bool "span breakdown present" true
    (contains traced "{\"span\":\"parse\",\"ns\":");
  (match P.parse_reply (rpc_exn c2 (P.request_to_json ~id:5 P.Health)) with
  | Ok (P.Health_reply { health; _ }) ->
      check "requests so far" 4 health.P.rpc_requests
  | _ -> Alcotest.fail "expected a health reply");
  (match P.parse_reply (rpc_exn c1 (P.request_to_json ~id:6 P.Metrics)) with
  | Ok (P.Metrics_reply { body; _ }) ->
      (* registries may be disabled in the test binary: the scrape must
         still be well-formed, just possibly empty *)
      check_bool "scrape is valid exposition" true
        (Result.is_ok (Obs.Exposition.parse body))
  | _ -> Alcotest.fail "expected a metrics reply");
  Service.Client.close c1;
  match P.parse_reply (rpc_exn c2 (P.request_to_json ~id:7 P.Shutdown)) with
  | Ok (P.Shutdown_ack _) -> Service.Client.close c2
  | _ -> Alcotest.fail "expected a shutdown ack"

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "service"
    [
      ( "golden",
        [
          Alcotest.test_case "hit equals cold miss" `Quick
            test_hit_byte_identical_to_cold_miss;
          Alcotest.test_case "reply equals one-shot export" `Quick
            test_reply_matches_one_shot_export;
        ] );
      ( "cache-key",
        [
          q prop_digest_injective_across_knobs;
          Alcotest.test_case "graph identity" `Quick
            test_digest_covers_graph_identity;
          Alcotest.test_case "replan digests chain" `Quick
            test_replan_digest_chains;
        ] );
      ( "replan",
        [
          Alcotest.test_case "matches Degrade.replan" `Quick
            test_replan_matches_degrade;
          Alcotest.test_case "unknown session" `Quick
            test_replan_unknown_session;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "engine bound" `Quick
            test_engine_respects_cache_bound;
        ] );
      ( "batch",
        [
          Alcotest.test_case "parallel equals sequential" `Quick
            test_batch_matches_sequential;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "malformed lines" `Quick
            test_malformed_lines_become_error_replies;
          q prop_parse_request_total;
          Alcotest.test_case "inline graph" `Quick
            test_inline_graph_round_trips;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "metrics and health" `Quick
            test_engine_metrics_and_health;
          Alcotest.test_case "traced reply byte-identity" `Quick
            test_traced_reply_byte_identity;
        ] );
      ( "socket",
        [
          Alcotest.test_case "round trip" `Quick test_socket_round_trip;
          Alcotest.test_case "two-client trace identity" `Quick
            test_socket_trace_identity;
        ] );
    ]
