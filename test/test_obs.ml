(* Observability layer (Obs.Trace / Obs.Counters): the no-op fast path,
   span nesting, the counters registry, per-domain stream merging, the
   Chrome trace_event exporter, and a golden structure test pinning the
   span tree and counter values of the fig7 / mesh-2x4 compaction run —
   including that enabling tracing leaves the schedule byte-identical to
   the golden signature. *)

module Trace = Obs.Trace
module Counters = Obs.Counters
module Histogram = Obs.Histogram
module Schedule = Cyclo.Schedule
module Compaction = Cyclo.Compaction

module Journal = Obs.Journal

let quiet () =
  Trace.disable ();
  Counters.disable ();
  Journal.disable ();
  Histogram.disable ();
  Trace.reset ();
  Counters.reset ();
  Journal.reset ();
  Histogram.reset ()

(* ------------------------------------------------------------------ *)
(* Fast path                                                            *)
(* ------------------------------------------------------------------ *)

let test_disabled_is_noop () =
  quiet ();
  let r = Trace.with_span "unrecorded" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span passes the result through" 42 r;
  Alcotest.(check int) "no span recorded" 0 (List.length (Trace.spans ()));
  let c = Counters.counter "test.noop" in
  Counters.incr c;
  Counters.incr c ~by:10;
  Counters.set c 99;
  Alcotest.(check int) "counter untouched while disabled" 0 (Counters.value c)

(* ------------------------------------------------------------------ *)
(* Span recording                                                       *)
(* ------------------------------------------------------------------ *)

let shape spans =
  List.map (fun s -> (s.Trace.depth, s.Trace.name)) spans

let test_nesting () =
  Trace.enable ();
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner" (fun () -> ());
      Trace.with_span "inner" (fun () -> ()));
  Trace.with_span "second-root" (fun () -> ());
  Trace.disable ();
  Alcotest.(check (list (pair int string)))
    "depths and begin order"
    [ (0, "outer"); (1, "inner"); (1, "inner"); (0, "second-root") ]
    (shape (Trace.spans ()));
  List.iter
    (fun s ->
      Alcotest.(check bool)
        ("non-negative duration of " ^ s.Trace.name)
        true
        (s.Trace.dur_ns >= 0 && s.Trace.start_ns >= 0))
    (Trace.spans ());
  quiet ()

let test_span_survives_exception () =
  Trace.enable ();
  (try Trace.with_span "boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  Trace.disable ();
  Alcotest.(check (list (pair int string)))
    "raising span still recorded" [ (0, "boom") ]
    (shape (Trace.spans ()));
  quiet ()

let test_enable_drops_previous () =
  Trace.enable ();
  Trace.with_span "old" (fun () -> ());
  Trace.enable ();
  Trace.with_span "new" (fun () -> ());
  Trace.disable ();
  Alcotest.(check (list (pair int string)))
    "only the new collection remains" [ (0, "new") ]
    (shape (Trace.spans ()));
  quiet ()

(* ------------------------------------------------------------------ *)
(* Monotonic clock                                                      *)
(* ------------------------------------------------------------------ *)

(* now_ns is CLOCK_MONOTONIC-backed: unlike the wall clock it can never
   jump backwards under NTP adjustment, so consecutive samples are
   non-decreasing — the property the old gettimeofday implementation
   could not offer. *)
let test_monotonic_timestamps () =
  quiet ();
  let samples = Array.init 10_000 (fun _ -> Trace.now_ns ()) in
  let ok = ref true in
  for i = 1 to Array.length samples - 1 do
    if samples.(i) < samples.(i - 1) then ok := false
  done;
  Alcotest.(check bool) "timestamps never decrease" true !ok;
  (* the clock actually advances across real work *)
  let t0 = Trace.now_ns () in
  ignore (Sys.opaque_identity (List.init 100_000 Fun.id));
  Alcotest.(check bool) "clock advances across work" true (Trace.now_ns () > t0);
  (* enable re-bases the origin: spans that follow start near zero and
     stay non-negative *)
  Trace.enable ();
  Trace.with_span "tick" (fun () -> ());
  Trace.disable ();
  List.iter
    (fun s ->
      Alcotest.(check bool) "span timestamps non-negative" true
        (s.Trace.start_ns >= 0 && s.Trace.dur_ns >= 0))
    (Trace.spans ());
  quiet ()

(* ------------------------------------------------------------------ *)
(* Journal                                                              *)
(* ------------------------------------------------------------------ *)

let test_journal_disabled_is_noop () =
  quiet ();
  Journal.record (Journal.Rotated { nodes = [ 1; 2 ] });
  Alcotest.(check int) "disabled record is dropped" 0
    (List.length (Journal.events ()))

let test_journal_basics () =
  Journal.enable ();
  Journal.record
    (Journal.Candidate
       {
         node = 3;
         cs = 2;
         pe = 1;
         reason = Journal.Comm_bound { pred = 0; hops = 1; volume = 2 };
       });
  Journal.record
    (Journal.Placed
       { node = 3; cs = 4; pe = 4; pf = -1; mobility = 1; static_level = 9;
         arrival = 3 });
  Journal.disable ();
  Journal.record (Journal.Rotated { nodes = [ 0 ] });
  (* dropped: disabled *)
  let events = Journal.events () in
  Alcotest.(check int) "two events, recording order" 2 (List.length events);
  (match events with
  | [
   Journal.Candidate
     { node = 3; cs = 2; reason = Journal.Comm_bound { hops = 1; volume = 2; _ }; _ };
   Journal.Placed { node = 3; cs = 4; _ };
  ] ->
      ()
  | _ -> Alcotest.fail "unexpected journal contents");
  let mem needle hay =
    let ln = String.length needle and n = String.length hay in
    let rec go i = i + ln <= n && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let rendered =
    String.concat "\n"
      (List.map (Fmt.str "%a" (Journal.pp_event ?label:None)) events)
  in
  Alcotest.(check bool) "pp mentions the comm-bound arithmetic" true
    (mem "1 hop x volume 2" rendered);
  let named =
    Fmt.str "%a"
      (Journal.pp_event ~label:(fun v -> String.make 1 (Char.chr (65 + v))))
      (List.hd events)
  in
  Alcotest.(check bool) "labeller renders node names" true
    (mem "comm-bound by A" named);
  Journal.enable ();
  Alcotest.(check int) "enable drops the previous collection" 0
    (List.length (Journal.events ()));
  quiet ()

(* ------------------------------------------------------------------ *)
(* Obs.Json reader                                                      *)
(* ------------------------------------------------------------------ *)

let test_json_reader () =
  let open Obs.Json in
  (match parse {|  {"a": [1, 2.5, "x\nA", true, null], "b": {"c": -3}} |} with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check (option int))
        "nested int" (Some (-3))
        (Option.bind (member "b" v) (fun b -> Option.bind (member "c" b) to_int));
      (match Option.bind (member "a" v) to_list with
      | Some [ one; half; Str s; Bool true; Null ] ->
          Alcotest.(check (option int)) "int element" (Some 1) (to_int one);
          Alcotest.(check (option (float 1e-9)))
            "float element" (Some 2.5) (to_num half);
          Alcotest.(check string) "escapes decoded" "x\nA" s;
          Alcotest.(check (option int)) "2.5 is not an int" None (to_int half)
      | _ -> Alcotest.fail "array shape"));
  List.iter
    (fun bad ->
      match parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" bad)
    [ "[1, 2"; "{} trailing"; "{\"a\" 1}"; "nul"; "\"open"; "" ];
  (* everything sched_bench writes to the history parses back *)
  (match
     parse
       {|{"schema":"ccsched-bench-history/1","unix_time":1,"host":"h","quick":false,"benchmarks":[{"name":"x","ns_per_run":1.5}],"schedules":[]}|}
   with
  | Ok v ->
      Alcotest.(check (option string))
        "schema readable"
        (Some "ccsched-bench-history/1")
        (Option.bind (member "schema" v) to_str)
  | Error e -> Alcotest.fail e)

(* ------------------------------------------------------------------ *)
(* Counters                                                             *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  Counters.enable ();
  let c = Counters.counter "test.counter" in
  let g = Counters.counter "test.gauge" in
  Counters.incr c;
  Counters.incr c ~by:3;
  Counters.set g 7;
  Counters.set g 5;
  Alcotest.(check int) "incr accumulates" 4 (Counters.value c);
  Alcotest.(check int) "set is last-write-wins" 5 (Counters.value g);
  Alcotest.(check bool) "same name, same handle" true
    (Counters.value (Counters.counter "test.counter") = 4);
  let dump = Counters.dump () in
  Alcotest.(check (option int))
    "dump carries the value" (Some 4)
    (List.assoc_opt "test.counter" dump);
  let sorted = List.sort compare dump in
  Alcotest.(check bool) "dump is name-sorted" true (dump = sorted);
  Counters.enable ();
  Alcotest.(check int) "enable zeroes the registry" 0 (Counters.value c);
  quiet ()

(* ------------------------------------------------------------------ *)
(* Histograms                                                           *)
(* ------------------------------------------------------------------ *)

let test_histogram_disabled_is_noop () =
  quiet ();
  let h = Histogram.histogram "test.h.off" in
  Histogram.observe h 5;
  Histogram.observe h 500;
  Alcotest.(check int) "no samples while disabled" 0 (Histogram.count h)

let test_histogram_bucketing () =
  Histogram.enable ();
  let h = Histogram.histogram "test.h.buckets" in
  (* bucket 0: v <= 0; bucket i >= 1: 2^(i-1) <= v < 2^i *)
  List.iter (Histogram.observe h) [ 0; -3; 1; 2; 3; 4; 7; 8; 1000 ];
  Alcotest.(check int) "count" 9 (Histogram.count h);
  Alcotest.(check int) "sum clamps negatives" (0 + 0 + 1 + 2 + 3 + 4 + 7 + 8 + 1000)
    (Histogram.sum h);
  Alcotest.(check (list (pair int int)))
    "buckets (upper_bound, count)"
    [ (0, 2); (1, 1); (3, 2); (7, 2); (15, 1); (1023, 1) ]
    (Histogram.buckets h);
  Alcotest.(check (float 1e-9))
    "mean" (1025. /. 9.) (Histogram.mean h);
  Alcotest.(check int) "p0 = smallest bound" 0 (Histogram.quantile h 0.0);
  Alcotest.(check int) "median within 2x" 3 (Histogram.quantile h 0.5);
  Alcotest.(check int) "p100 = largest bound" 1023 (Histogram.quantile h 1.0);
  Alcotest.(check bool) "q out of range rejected" true
    (match Histogram.quantile h 1.5 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "same name, same handle" true
    (Histogram.count (Histogram.histogram "test.h.buckets") = 9);
  quiet ()

let test_histogram_registry () =
  Histogram.enable ();
  let a = Histogram.histogram "test.h.a" in
  let b = Histogram.histogram "test.h.b" in
  Histogram.observe a 1;
  Histogram.observe b 100;
  let dump = Histogram.dump () in
  Alcotest.(check bool) "dump is name-sorted" true
    (dump = List.sort (fun (x, _) (y, _) -> compare x y) dump);
  Alcotest.(check (option (list (pair int int))))
    "a's buckets in the dump"
    (Some [ (1, 1) ])
    (List.assoc_opt "test.h.a" dump);
  (* empty histograms appear with no buckets, mirroring Counters.dump *)
  let c = Histogram.histogram "test.h.empty" in
  ignore c;
  Alcotest.(check (option (list (pair int int))))
    "registered-but-empty included" (Some [])
    (List.assoc_opt "test.h.empty" (Histogram.dump ()));
  Histogram.enable ();
  Alcotest.(check int) "enable zeroes the registry" 0 (Histogram.count a);
  (* summary printer runs *)
  Histogram.observe a 42;
  let text = Fmt.str "%a" Histogram.pp_summary () in
  Alcotest.(check bool) "summary mentions the histogram" true
    (String.length text > 0);
  quiet ()

(* ------------------------------------------------------------------ *)
(* Per-domain streams (Parutil integration)                             *)
(* ------------------------------------------------------------------ *)

let count name spans =
  List.length (List.filter (fun s -> s.Trace.name = name) spans)

let test_parallel_streams () =
  Trace.enable ();
  Counters.enable ();
  let r = Parutil.Parallel.mapi ~domains:3 (fun i x -> i + x) [ 10; 20; 30; 40 ] in
  Trace.disable ();
  Counters.disable ();
  Alcotest.(check (list int)) "results as List.mapi" [ 10; 21; 32; 43 ] r;
  let spans = Trace.spans () in
  Alcotest.(check int) "one map span" 1 (count "parutil.map" spans);
  Alcotest.(check int) "one span per task" 4 (count "parutil.task" spans);
  Alcotest.(check int) "tasks counted" 4
    (Counters.value (Counters.counter "parutil.tasks"));
  Alcotest.(check int) "domains counted" 3
    (Counters.value (Counters.counter "parutil.domains"));
  (* The merge is keyed on (domain, seq): spans of one domain stay in
     begin order even after worker streams are interleaved. *)
  let rec per_domain_ordered = function
    | a :: (b :: _ as rest) ->
        (a.Trace.domain < b.Trace.domain
        || (a.Trace.domain = b.Trace.domain && a.Trace.seq < b.Trace.seq))
        && per_domain_ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "deterministic merge order" true
    (per_domain_ordered spans);
  quiet ()

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON                                              *)
(* ------------------------------------------------------------------ *)

(* Minimal JSON syntax checker — enough to guarantee the exporter's
   output loads in chrome://tracing / Perfetto / json.tool. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\n' | '\t' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c = if peek () = Some c then incr pos else raise Exit in
  let lit w =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then pos := !pos + l
    else raise Exit
  in
  let str () =
    expect '"';
    let rec go () =
      match peek () with
      | Some '"' -> incr pos
      | Some '\\' ->
          pos := !pos + 2;
          go ()
      | Some _ ->
          incr pos;
          go ()
      | None -> raise Exit
    in
    go ()
  in
  let number () =
    let numeric = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    (match peek () with
    | Some c when numeric c -> ()
    | _ -> raise Exit);
    while match peek () with Some c when numeric c -> true | _ -> false do
      incr pos
    done
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> str ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | _ -> raise Exit
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else
      let rec members () =
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            members ()
        | Some '}' -> incr pos
        | _ -> raise Exit
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            elems ()
        | Some ']' -> incr pos
        | _ -> raise Exit
      in
      elems ()
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | ok -> ok
  | exception Exit -> false

let test_chrome_export () =
  Trace.enable ();
  Trace.with_span "a\"quoted\"" ~args:[ ("k", "v\\w") ] (fun () ->
      Trace.with_span "b" (fun () -> ()));
  Trace.disable ();
  let json =
    Trace.to_chrome_json
      ~counters:[ ("c.one", 1); ("c.two", 2) ]
      ~histograms:[ ("h.lat", [ (1, 3); (7, 2) ]); ("h.empty", []) ]
      ()
  in
  Alcotest.(check bool) "exporter output is valid JSON" true (json_valid json);
  let mem needle =
    let ln = String.length needle and n = String.length json in
    let rec go i = i + ln <= n && (String.sub json i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has traceEvents" true (mem "\"traceEvents\"");
  Alcotest.(check bool) "has complete events" true (mem "\"ph\": \"X\"");
  Alcotest.(check bool) "has the counters block" true (mem "\"counters\"");
  Alcotest.(check bool) "counter value embedded" true (mem "\"c.two\": 2");
  Alcotest.(check bool) "has the histograms block" true (mem "\"histograms\"");
  Alcotest.(check bool) "histogram buckets embedded" true
    (mem "\"h.lat\": [[1, 3], [7, 2]]");
  Alcotest.(check bool) "escapes quotes in names" true (mem "a\\\"quoted\\\"");
  Alcotest.(check bool) "empty collection still valid" true
    (json_valid (Trace.to_chrome_json ()));
  quiet ()

(* ------------------------------------------------------------------ *)
(* Golden trace: fig7 on mesh-2x4                                       *)
(* ------------------------------------------------------------------ *)

(* From test_golden_signatures.ml — the compacted best schedule must
   stay byte-identical with tracing enabled. *)
let fig7_mesh2x4_best =
  "6;1@0;3@4;3@1;4@4;5@4;1@5;2@2;6@1;3@2;3@5;4@2;5@5;6@4;5@2;2@0;3@0;2@1;1@4;5@0"

let fig7_mesh2x4_passes = 76

let test_golden_trace () =
  let g =
    match Dataflow.Io.read_file ~path:"../data/fig7.csdfg" with
    | Ok g -> g
    | Error e -> Alcotest.fail (Dataflow.Io.error_to_string e)
  in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  Trace.enable ();
  Counters.enable ();
  let r = Compaction.run_on ~validate:false g topo in
  Trace.disable ();
  Counters.disable ();
  Alcotest.(check string)
    "schedule byte-identical with tracing on" fig7_mesh2x4_best
    (Schedule.signature r.Compaction.best);
  let spans = Trace.spans () in
  (* sequential run: a single stream *)
  List.iter
    (fun s ->
      Alcotest.(check int) "all spans on one domain" 0 s.Trace.domain)
    spans;
  let expected =
    (0, "compaction.run") :: (1, "startup.run")
    :: List.concat
         (List.init fig7_mesh2x4_passes (fun _ ->
              [ (1, "compaction.pass"); (2, "rotation.start") ]))
  in
  Alcotest.(check (list (pair int string)))
    "golden span structure" expected (shape spans);
  let counter name = Counters.value (Counters.counter name) in
  Alcotest.(check int) "one startup run" 1 (counter "startup.runs");
  Alcotest.(check int) "pass counter matches the trace"
    (List.length r.Compaction.trace)
    (counter "compaction.passes");
  Alcotest.(check int) "golden pass count" fig7_mesh2x4_passes
    (counter "compaction.passes");
  Alcotest.(check int) "every pass rotated" fig7_mesh2x4_passes
    (counter "rotation.rotations");
  Alcotest.(check int) "best length gauge" 6
    (counter "compaction.best_length");
  Alcotest.(check bool) "occupancy queries observed" true
    (counter "schedule.occupancy_queries" > 0);
  quiet ()

let () =
  Alcotest.run "obs"
    [
      ( "fast-path",
        [ Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop ] );
      ( "trace",
        [
          Alcotest.test_case "nesting and order" `Quick test_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_span_survives_exception;
          Alcotest.test_case "enable starts fresh" `Quick
            test_enable_drops_previous;
        ] );
      ( "clock",
        [
          Alcotest.test_case "monotonic non-decreasing timestamps" `Quick
            test_monotonic_timestamps;
        ] );
      ( "journal",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_journal_disabled_is_noop;
          Alcotest.test_case "record / events / re-enable" `Quick
            test_journal_basics;
        ] );
      ( "json",
        [ Alcotest.test_case "reader accepts and rejects" `Quick test_json_reader ] );
      ( "counters",
        [ Alcotest.test_case "registry semantics" `Quick test_counters ] );
      ( "histograms",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_histogram_disabled_is_noop;
          Alcotest.test_case "log2 bucketing and quantiles" `Quick
            test_histogram_bucketing;
          Alcotest.test_case "registry and dump" `Quick test_histogram_registry;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "per-domain streams merge" `Quick
            test_parallel_streams;
        ] );
      ( "export",
        [ Alcotest.test_case "chrome trace_event JSON" `Quick test_chrome_export ] );
      ( "golden",
        [ Alcotest.test_case "fig7 mesh-2x4 span tree" `Quick test_golden_trace ] );
    ]
