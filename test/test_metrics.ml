(* Metrics against hand-computed values, plus the CSV round-trip.

   The fig7 / mesh-2x4 start-up table is rebuilt assignment by
   assignment from the golden signature and every metric is checked
   against numbers worked out by hand from the paper's figure: total
   computation 24 over 13 x 8 cells, 7 cross-processor edges costing
   1+2+1+1+1+1+1 = 8 steps per iteration, iteration bound 4.  The CSV
   round-trip is a QCheck property over random connected graphs. *)

module Csdfg = Dataflow.Csdfg
module Schedule = Cyclo.Schedule
module Comm = Cyclo.Comm
module Metrics = Cyclo.Metrics
module Export = Cyclo.Export

let fig7 () =
  match Dataflow.Io.read_file ~path:"../data/fig7.csdfg" with
  | Ok g -> g
  | Error e -> Alcotest.fail (Dataflow.Io.error_to_string e)

(* The golden start-up schedule of fig7 on the 2x4 mesh
   (test_golden_signatures.ml), as (label, cb, pe) triples. *)
let fig7_startup_table =
  [
    ("A", 1, 0); ("B", 2, 0); ("C", 3, 1); ("D", 4, 4); ("E", 6, 5);
    ("F", 5, 4); ("G", 4, 0); ("H", 3, 0); ("I", 6, 0); ("J", 7, 4);
    ("K", 7, 0); ("L", 9, 4); ("M", 7, 5); ("N", 8, 0); ("O", 9, 0);
    ("P", 10, 0); ("Q", 11, 4); ("R", 8, 5); ("S", 13, 4);
  ]

let node_by_label g label =
  match List.find_opt (fun v -> Csdfg.label g v = label) (Csdfg.nodes g) with
  | Some v -> v
  | None -> Alcotest.fail ("no node " ^ label)

let hand_built_startup () =
  let g = fig7 () in
  let comm = Comm.of_topology (Topology.mesh ~rows:2 ~cols:4) in
  let sched =
    List.fold_left
      (fun s (label, cb, pe) ->
        Schedule.assign s ~node:(node_by_label g label) ~cb ~pe)
      (Schedule.empty g comm) fig7_startup_table
  in
  Schedule.set_length sched 13

let feps = Alcotest.float 1e-9

let test_fig7_hand_computed () =
  let s = hand_built_startup () in
  (* sanity: the hand-built table is what the scheduler produces *)
  Alcotest.(check string)
    "hand-built table matches the golden signature"
    (Schedule.signature
       (Cyclo.Startup.run_on (fig7 ()) (Topology.mesh ~rows:2 ~cols:4)))
    (Schedule.signature s);
  (* total computation 24 over 13 steps x 8 processors = 104 cells *)
  Alcotest.check feps "utilization 24/104" (24. /. 104.)
    (Metrics.utilization s);
  Alcotest.(check int) "idle steps 104 - 24" 80 (Metrics.idle_steps s);
  Alcotest.(check int) "4 processors used" 4 (Metrics.processors_used s);
  Alcotest.check feps "speedup 24/13" (24. /. 13.)
    (Metrics.speedup_vs_sequential s);
  (* cross edges: P->S and S->A (1 hop x 1), A->D (1 hop x 2), A->C,
     C->I, D->E, R->S (1 hop x 1 each) — 7 edges, 8 steps *)
  Alcotest.(check int) "7 cross edges" 7 (Metrics.cross_edges s);
  Alcotest.(check int) "comm cost 8/iteration" 8
    (Metrics.comm_cost_per_iteration s);
  Alcotest.check feps "comm ratio 8/24" (8. /. 24.) (Metrics.comm_ratio s);
  (* iteration bound: critical cycle A B H G I K N O P S over S->A's
     3 delays: ceil(11/3) = 4; gap = 13 - 4 *)
  Alcotest.(check (option int)) "bound gap 9" (Some 9) (Metrics.bound_gap s)

(* A two-node chain placed by hand on a 2-processor machine: every
   metric is small enough to read off directly. *)
let test_tiny_hand_computed () =
  let g =
    match
      Dataflow.Io.of_string "csdfg tiny\nnode A 1\nnode B 1\nedge A B 0 1\n"
    with
    | Ok g -> g
    | Error e -> Alcotest.fail (Dataflow.Io.error_to_string e)
  in
  let comm = Comm.of_topology (Topology.complete 2) in
  let s =
    Schedule.empty g comm
    |> (fun s -> Schedule.assign s ~node:(node_by_label g "A") ~cb:1 ~pe:0)
    |> (fun s -> Schedule.assign s ~node:(node_by_label g "B") ~cb:3 ~pe:1)
  in
  let s = Schedule.set_length s 3 in
  Alcotest.check feps "utilization 2/6" (2. /. 6.) (Metrics.utilization s);
  Alcotest.(check int) "idle 4" 4 (Metrics.idle_steps s);
  Alcotest.(check int) "both processors used" 2 (Metrics.processors_used s);
  Alcotest.(check int) "one cross edge" 1 (Metrics.cross_edges s);
  Alcotest.(check int) "comm cost 1" 1 (Metrics.comm_cost_per_iteration s);
  Alcotest.check feps "comm ratio 1/2" 0.5 (Metrics.comm_ratio s);
  Alcotest.(check (option int)) "acyclic: no bound" None (Metrics.bound_gap s);
  let shorter = Schedule.set_length s 3 in
  Alcotest.check feps "improvement 0 vs itself" 0.
    (Metrics.improvement ~before:s ~after:shorter)

let test_improvement () =
  let s = hand_built_startup () in
  let best =
    (Cyclo.Compaction.run_on ~validate:false (fig7 ())
       (Topology.mesh ~rows:2 ~cols:4))
      .Cyclo.Compaction.best
  in
  (* 13 -> 6: (13 - 6) / 13 *)
  Alcotest.(check int) "compacted length" 6 (Schedule.length best);
  Alcotest.check feps "improvement (13-6)/13 %" (100. *. 7. /. 13.)
    (Metrics.improvement ~before:s ~after:best)

(* ------------------------------------------------------------------ *)
(* CSV round-trip property                                              *)
(* ------------------------------------------------------------------ *)

let small_params =
  { Workloads.Random_gen.default with nodes = 8; feedback_edges = 2 }

let architectures =
  [|
    Topology.linear_array 4;
    Topology.ring 5;
    Topology.complete 4;
    Topology.mesh ~rows:2 ~cols:3;
  |]

let prop_csv_round_trip =
  QCheck.Test.make ~count:100 ~name:"to_csv / of_csv round-trips"
    QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
    (fun (gseed, aseed) ->
      let g =
        Workloads.Random_gen.generate_connected ~params:small_params
          ~seed:gseed ()
      in
      let topo = architectures.(abs aseed mod Array.length architectures) in
      let comm = Comm.of_topology topo in
      let sched = Cyclo.Startup.run g comm in
      match Export.of_csv g comm (Export.to_csv sched) with
      | Error e -> QCheck.Test.fail_report e
      | Ok back ->
          Schedule.compare_assignments sched back = 0
          && Schedule.signature sched = Schedule.signature back)

let () =
  Alcotest.run "metrics"
    [
      ( "hand-computed",
        [
          Alcotest.test_case "fig7 startup on mesh-2x4" `Quick
            test_fig7_hand_computed;
          Alcotest.test_case "two-node chain" `Quick test_tiny_hand_computed;
          Alcotest.test_case "improvement 13 -> 6" `Quick test_improvement;
        ] );
      ( "export",
        [ QCheck_alcotest.to_alcotest ~long:false prop_csv_round_trip ] );
    ]
