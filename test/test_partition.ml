(* Multi-application scheduling: region carving, both strategies, and
   their invariants. *)

module Partition = Cyclo.Partition
module Schedule = Cyclo.Schedule
module Csdfg = Dataflow.Csdfg

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let apps () =
  [ Workloads.Dsp.iir_biquad; Workloads.Dsp.diffeq; Workloads.Kernels.volterra ]

let test_partitioned_covers_processors () =
  match Partition.partitioned (apps ()) (Topology.mesh ~rows:2 ~cols:4) with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let all =
        List.concat_map (fun p -> p.Partition.processors) r.Partition.placements
      in
      check "every processor used once" 8
        (List.length (List.sort_uniq compare all));
      check "no double assignment" (List.length all)
        (List.length (List.sort_uniq compare all));
      List.iter
        (fun p ->
          check_bool
            (Csdfg.name p.Partition.graph ^ " schedule legal")
            true
            (Cyclo.Validator.is_legal p.Partition.schedule);
          check
            (Csdfg.name p.Partition.graph ^ " region size matches machine")
            (List.length p.Partition.processors)
            (Schedule.n_processors p.Partition.schedule))
        r.Partition.placements

let test_partitioned_period_is_worst_length () =
  match Partition.partitioned (apps ()) (Topology.mesh ~rows:2 ~cols:4) with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let worst =
        List.fold_left
          (fun acc p -> max acc (Schedule.length p.Partition.schedule))
          0 r.Partition.placements
      in
      check "period" worst r.Partition.period

let test_partitioned_work_proportionality () =
  (* the heaviest application gets the biggest region *)
  match Partition.partitioned (apps ()) (Topology.mesh ~rows:2 ~cols:4) with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let sizes =
        List.map
          (fun p ->
            (Csdfg.total_time p.Partition.graph,
             List.length p.Partition.processors))
          r.Partition.placements
      in
      let sorted_by_work = List.sort compare sizes in
      let region_sizes = List.map snd sorted_by_work in
      check_bool "monotone in work" true
        (List.sort compare region_sizes = region_sizes)

let test_fused_shares_everything () =
  match Partition.fused (apps ()) (Topology.mesh ~rows:2 ~cols:4) with
  | Error e -> Alcotest.fail e
  | Ok r ->
      List.iter
        (fun p -> check "full machine" 8 (List.length p.Partition.processors))
        r.Partition.placements;
      check "three placements" 3 (List.length r.Partition.placements);
      check_bool "shared schedule legal" true
        (Cyclo.Validator.is_legal
           (List.hd r.Partition.placements).Partition.schedule)

let test_single_app_partitioned_gets_whole_machine () =
  match
    Partition.partitioned [ Workloads.Examples.fig7 ] (Topology.ring 8)
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
      check "one region" 1 (List.length r.Partition.placements);
      check "all processors" 8
        (List.length (List.hd r.Partition.placements).Partition.processors)

let test_too_many_apps_rejected () =
  let many = List.init 5 (fun _ -> Workloads.Examples.tiny_chain) in
  check_bool "5 apps on 4 processors" true
    (Result.is_error (Partition.partitioned many (Topology.ring 4)))

let test_empty_rejected () =
  check_bool "no apps" true
    (Result.is_error (Partition.partitioned [] (Topology.ring 4)));
  check_bool "no apps fused" true
    (Result.is_error (Partition.fused [] (Topology.ring 4)))

let test_partitioned_on_all_standard_topologies () =
  List.iter
    (fun topo ->
      match
        Partition.partitioned
          [ Workloads.Dsp.iir_biquad; Workloads.Dsp.diffeq ]
          topo
      with
      | Error e -> Alcotest.fail (Topology.name topo ^ ": " ^ e)
      | Ok r ->
          List.iter
            (fun p ->
              Alcotest.(check bool)
                (Topology.name topo ^ " legal")
                true
                (Cyclo.Validator.is_legal p.Partition.schedule))
            r.Partition.placements)
    [
      Topology.linear_array 8;
      Topology.ring 8;
      Topology.complete 8;
      Topology.mesh ~rows:2 ~cols:4;
      Topology.hypercube 3;
      Topology.star 8;
      Topology.binary_tree 8;
    ]

let () =
  Alcotest.run "partition"
    [
      ( "partitioned",
        [
          Alcotest.test_case "covers processors" `Quick
            test_partitioned_covers_processors;
          Alcotest.test_case "period" `Quick test_partitioned_period_is_worst_length;
          Alcotest.test_case "work proportional" `Quick
            test_partitioned_work_proportionality;
          Alcotest.test_case "single app" `Quick
            test_single_app_partitioned_gets_whole_machine;
          Alcotest.test_case "all topologies" `Quick
            test_partitioned_on_all_standard_topologies;
        ] );
      ( "fused",
        [ Alcotest.test_case "shares machine" `Quick test_fused_shares_everything ] );
      ( "errors",
        [
          Alcotest.test_case "too many apps" `Quick test_too_many_apps_rejected;
          Alcotest.test_case "empty" `Quick test_empty_rejected;
        ] );
    ]
