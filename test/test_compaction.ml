(* Tests for rotation, remapping and the cyclo-compaction driver,
   including the paper's theorems as executable properties. *)

module Csdfg = Dataflow.Csdfg
module Schedule = Cyclo.Schedule
module Comm = Cyclo.Comm
module Startup = Cyclo.Startup
module Rotation = Cyclo.Rotation
module Remap = Cyclo.Remap
module Compaction = Cyclo.Compaction
module Validator = Cyclo.Validator
module Baseline = Cyclo.Baseline

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fig1b = Workloads.Examples.fig1b

let paper_mesh () =
  Topology.relabel (Topology.mesh ~rows:2 ~cols:2)
    Workloads.Examples.fig1_mesh_permutation

let node g l = Csdfg.node_of_label g l

(* ------------------------------------------------------------------ *)
(* Rotation                                                             *)
(* ------------------------------------------------------------------ *)

let test_rotation_first_pass () =
  let s = Startup.run_on fig1b (paper_mesh ()) in
  match Rotation.start s with
  | Error e -> Alcotest.fail e
  | Ok rot ->
      Alcotest.(check (list int)) "J = {A}" [ node fig1b "A" ] rot.Rotation.rotated;
      check "previous length" 7 rot.Rotation.previous_length;
      (* remaining nodes shifted up by one *)
      check "B now at row 1" 1 (Schedule.cb rot.Rotation.base (node fig1b "B"));
      check "base length" 6 (Schedule.length rot.Rotation.base);
      (* the retimed graph matches paper Figure 1(c) *)
      let dfg = Schedule.dfg rot.Rotation.base in
      let d s t =
        let e =
          List.find
            (fun e ->
              Csdfg.label dfg e.Digraph.Graph.src = s
              && Csdfg.label dfg e.Digraph.Graph.dst = t)
            (Csdfg.edges dfg)
        in
        Csdfg.delay e
      in
      check "D->A retimed" 2 (d "D" "A");
      check "A->B retimed" 1 (d "A" "B")

let test_rotation_fallback_reproduces_rotated_schedule () =
  (* Lemma 4.1: the fallback placement is the original schedule rotated,
     same length, still legal. *)
  let s = Startup.run_on fig1b (paper_mesh ()) in
  match Rotation.start s with
  | Error e -> Alcotest.fail e
  | Ok rot ->
      let fb = Rotation.apply_fallback rot in
      check "same length (Lemma 4.1)" (Schedule.length s) (Schedule.length fb);
      check "A at the end on its old processor" 7
        (Schedule.cb fb (node fig1b "A"));
      check "A same pe" (Schedule.pe s (node fig1b "A"))
        (Schedule.pe fb (node fig1b "A"));
      check_bool "fallback legal" true (Validator.is_legal fb)

let test_rotation_on_empty () =
  let s = Schedule.empty fig1b (Comm.of_topology (paper_mesh ())) in
  check_bool "empty rejected" true (Result.is_error (Rotation.start s))

(* ------------------------------------------------------------------ *)
(* Remap (one pass)                                                     *)
(* ------------------------------------------------------------------ *)

let test_first_pass_moves_a_off_pe1 () =
  (* The paper's first cyclo iteration re-places A under PE2 and shortens
     the table to 6. *)
  let s = Startup.run_on fig1b (paper_mesh ()) in
  let next, outcome = Compaction.pass Remap.With_relaxation s in
  check_bool "compacted" true (outcome = Compaction.Compacted);
  check "length 6" 6 (Schedule.length next);
  check_bool "A moved off pe1" true (Schedule.pe next (node fig1b "A") <> 0);
  check_bool "legal" true (Validator.is_legal next)

let test_pass_without_relaxation_never_grows () =
  (* Theorem 4.4 on a concrete run. *)
  let rec drive s n =
    if n = 0 then ()
    else begin
      let next, _ = Compaction.pass Remap.Without_relaxation s in
      check_bool "non-increasing (Theorem 4.4)" true
        (Schedule.length next <= Schedule.length s);
      check_bool "legal" true (Validator.is_legal next);
      drive next (n - 1)
    end
  in
  drive (Startup.run_on fig1b (paper_mesh ())) 15

let test_place_order_deterministic () =
  let s = Startup.run_on fig1b (paper_mesh ()) in
  match Rotation.start s with
  | Error e -> Alcotest.fail e
  | Ok rot ->
      Alcotest.(check (list int)) "order" rot.Rotation.rotated
        (Remap.place_order rot)

(* ------------------------------------------------------------------ *)
(* Full compaction: the paper's Figure 1-4 walkthrough                  *)
(* ------------------------------------------------------------------ *)

let test_fig1_compaction_beats_paper () =
  (* The paper compacts 7 -> 5 in three passes; the remapper here reaches
     the iteration bound (3).  Anything <= 5 reproduces the claim. *)
  let r = Compaction.run_on fig1b (paper_mesh ()) in
  check "startup length" 7 (Schedule.length r.Compaction.startup);
  check_bool "at most the paper's 5" true
    (Schedule.length r.Compaction.best <= 5);
  check_bool "never below the iteration bound" true
    (Schedule.length r.Compaction.best
    >= Option.get (Dataflow.Iteration_bound.exact_ceil fig1b));
  check_bool "legal" true (Validator.is_legal r.Compaction.best);
  check_bool "simulated legal" true
    (Validator.simulate r.Compaction.best ~iterations:8 = Ok ())

let test_fig1_reaches_five_within_three_passes () =
  let r = Compaction.run_on ~passes:3 fig1b (paper_mesh ()) in
  check_bool "7 -> <= 5 in three passes (paper Figure 3(b))" true
    (Schedule.length r.Compaction.best <= 5)

let test_trace_is_complete_and_consistent () =
  let r = Compaction.run_on ~passes:10 fig1b (paper_mesh ()) in
  check_bool "trace not empty" true (r.Compaction.trace <> []);
  List.iteri
    (fun i e -> check "pass numbering" (i + 1) e.Compaction.pass)
    r.Compaction.trace;
  let min_traced =
    List.fold_left (fun acc e -> min acc e.Compaction.length)
      (Schedule.length r.Compaction.startup)
      r.Compaction.trace
  in
  check "best equals the minimum over the trace" min_traced
    (Schedule.length r.Compaction.best)

let test_without_relaxation_monotone_trace () =
  let r =
    Compaction.run_on ~mode:Remap.Without_relaxation fig1b (paper_mesh ())
  in
  let rec monotone prev = function
    | [] -> true
    | e :: rest -> e.Compaction.length <= prev && monotone e.Compaction.length rest
  in
  check_bool "Theorem 4.4 over the whole trace" true
    (monotone (Schedule.length r.Compaction.startup) r.Compaction.trace);
  check_bool "no Expanded outcome" true
    (List.for_all
       (fun e -> e.Compaction.outcome <> Compaction.Expanded)
       r.Compaction.trace)

let test_best_never_worse_than_startup () =
  List.iter
    (fun (name, g) ->
      let r = Compaction.run_on g (Topology.hypercube 3) in
      Alcotest.(check bool)
        (name ^ ": best <= startup")
        true
        (Schedule.length r.Compaction.best
        <= Schedule.length r.Compaction.startup))
    (Workloads.Suite.all ())

let test_compaction_respects_iteration_bound () =
  List.iter
    (fun (name, g) ->
      match Dataflow.Iteration_bound.exact_ceil g with
      | None -> ()
      | Some bound ->
          let r = Compaction.run_on g (Topology.complete 8) in
          Alcotest.(check bool)
            (name ^ ": length >= iteration bound")
            true
            (Schedule.length r.Compaction.best >= bound))
    (Workloads.Suite.all ())

let test_modes_both_legal_fig7 () =
  let g = Workloads.Examples.fig7 in
  List.iter
    (fun mode ->
      let r = Compaction.run_on ~mode g (Topology.mesh ~rows:2 ~cols:4) in
      check_bool "legal" true (Validator.is_legal r.Compaction.best))
    [ Remap.Without_relaxation; Remap.With_relaxation ]

let test_passes_zero_returns_startup () =
  let r = Compaction.run_on ~passes:0 fig1b (paper_mesh ()) in
  check "no passes" 0 (List.length r.Compaction.trace);
  check "best is startup" 0
    (Schedule.compare_assignments r.Compaction.best r.Compaction.startup)

let test_single_processor_fixed_point () =
  (* On one processor rotation can only cycle the order; length stays at
     the sequential sum. *)
  let r = Compaction.run_on fig1b (Topology.linear_array 1) in
  check "sequential length" (Csdfg.total_time fig1b)
    (Schedule.length r.Compaction.best)

(* ------------------------------------------------------------------ *)
(* Remap scoring strategies                                             *)
(* ------------------------------------------------------------------ *)

let test_scoring_both_legal () =
  List.iter
    (fun scoring ->
      let r =
        Compaction.run_on ~scoring Workloads.Examples.fig7
          (Topology.mesh ~rows:2 ~cols:4)
      in
      check_bool "legal" true (Validator.is_legal r.Compaction.best))
    [ Remap.Pressure_first; Remap.Earliest_step ]

let test_scoring_pressure_helps_serial_chains () =
  (* The elliptic filter is a long serial chain: earliest-step remapping
     re-queues it behind its old processor and plateaus; pressure-first
     pipelines it (DESIGN.md §5, bench A8). *)
  let g = Dataflow.Transform.slowdown Workloads.Filters.elliptic 3 in
  let topo = Topology.complete 8 in
  let pressure =
    Compaction.run_on ~scoring:Remap.Pressure_first ~validate:false g topo
  in
  let earliest =
    Compaction.run_on ~scoring:Remap.Earliest_step ~validate:false g topo
  in
  check_bool "pressure strictly better on the elliptic chain" true
    (Schedule.length pressure.Compaction.best
    < Schedule.length earliest.Compaction.best)

let test_scoring_theorem_4_4_holds_for_both () =
  List.iter
    (fun scoring ->
      let r =
        Compaction.run_on ~scoring ~mode:Remap.Without_relaxation
          Workloads.Examples.fig7 (Topology.ring 8)
      in
      let rec monotone prev = function
        | [] -> true
        | e :: rest ->
            e.Compaction.length <= prev && monotone e.Compaction.length rest
      in
      check_bool "monotone" true
        (monotone (Schedule.length r.Compaction.startup) r.Compaction.trace))
    [ Remap.Pressure_first; Remap.Earliest_step ]

(* ------------------------------------------------------------------ *)
(* Baselines                                                            *)
(* ------------------------------------------------------------------ *)

let test_repair_produces_legal_schedule () =
  let topo = paper_mesh () in
  let zero = Comm.zero ~n:4 ~name:"z" in
  let oblivious = Startup.run fig1b zero in
  let repaired = Baseline.repair oblivious (Comm.of_topology topo) in
  check_bool "repaired is legal" true (Validator.is_legal repaired);
  (* processor assignments preserved *)
  List.iter
    (fun v ->
      check "same pe" (Schedule.pe oblivious v) (Schedule.pe repaired v))
    (Csdfg.nodes fig1b)

let test_oblivious_pays_for_communication () =
  (* The comm-oblivious schedule spreads C to another processor and must
     then pay the transfer: repaired length >= the aware scheduler's. *)
  let topo = paper_mesh () in
  let aware = Startup.run_on fig1b topo in
  let oblivious = Baseline.list_oblivious fig1b topo in
  check_bool "communication awareness does not lose" true
    (Schedule.length aware <= Schedule.length oblivious)

let test_rotation_oblivious_baseline_legal () =
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let s = Baseline.rotation_oblivious Workloads.Examples.fig7 topo in
  check_bool "legal" true (Validator.is_legal s)

let test_cyclo_beats_or_ties_rotation_oblivious_fig7 () =
  (* The paper's core claim: communication-sensitive remapping wins on
     communication-bound architectures. *)
  let topo = Topology.linear_array 8 in
  let g = Workloads.Examples.fig7 in
  let ours = Compaction.run_on g topo in
  let oblivious = Baseline.rotation_oblivious g topo in
  check_bool "cyclo <= repaired oblivious rotation" true
    (Schedule.length ours.Compaction.best <= Schedule.length oblivious)

let test_sequential_length () =
  check "fig1b" 8 (Baseline.sequential_length fig1b)

let () =
  Alcotest.run "compaction"
    [
      ( "rotation",
        [
          Alcotest.test_case "first pass" `Quick test_rotation_first_pass;
          Alcotest.test_case "fallback = rotated schedule" `Quick
            test_rotation_fallback_reproduces_rotated_schedule;
          Alcotest.test_case "empty schedule" `Quick test_rotation_on_empty;
        ] );
      ( "remap",
        [
          Alcotest.test_case "paper first iteration" `Quick
            test_first_pass_moves_a_off_pe1;
          Alcotest.test_case "theorem 4.4 stepwise" `Quick
            test_pass_without_relaxation_never_grows;
          Alcotest.test_case "deterministic order" `Quick
            test_place_order_deterministic;
        ] );
      ( "full-run",
        [
          Alcotest.test_case "fig1 walkthrough" `Quick
            test_fig1_compaction_beats_paper;
          Alcotest.test_case "three passes reach 5" `Quick
            test_fig1_reaches_five_within_three_passes;
          Alcotest.test_case "trace consistency" `Quick
            test_trace_is_complete_and_consistent;
          Alcotest.test_case "theorem 4.4 whole trace" `Quick
            test_without_relaxation_monotone_trace;
          Alcotest.test_case "best <= startup everywhere" `Quick
            test_best_never_worse_than_startup;
          Alcotest.test_case "respects iteration bound" `Quick
            test_compaction_respects_iteration_bound;
          Alcotest.test_case "both modes legal on fig7" `Quick
            test_modes_both_legal_fig7;
          Alcotest.test_case "zero passes" `Quick test_passes_zero_returns_startup;
          Alcotest.test_case "single processor" `Quick
            test_single_processor_fixed_point;
        ] );
      ( "scoring",
        [
          Alcotest.test_case "both legal" `Quick test_scoring_both_legal;
          Alcotest.test_case "pressure pipelines chains" `Quick
            test_scoring_pressure_helps_serial_chains;
          Alcotest.test_case "theorem 4.4 either way" `Quick
            test_scoring_theorem_4_4_holds_for_both;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "repair legality" `Quick
            test_repair_produces_legal_schedule;
          Alcotest.test_case "oblivious pays" `Quick
            test_oblivious_pays_for_communication;
          Alcotest.test_case "rotation baseline legal" `Quick
            test_rotation_oblivious_baseline_legal;
          Alcotest.test_case "cyclo vs oblivious rotation" `Quick
            test_cyclo_beats_or_ties_rotation_oblivious_fig7;
          Alcotest.test_case "sequential" `Quick test_sequential_length;
        ] );
    ]
