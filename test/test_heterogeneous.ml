(* Heterogeneous-machine extension: per-processor cycle-time multipliers.
   Uniform speeds must reproduce the homogeneous behaviour exactly; slow
   processors must stretch occupancy everywhere consistently (validator,
   simulator, metrics, exact solver). *)

module Csdfg = Dataflow.Csdfg
module Schedule = Cyclo.Schedule
module Startup = Cyclo.Startup
module Compaction = Cyclo.Compaction
module Validator = Cyclo.Validator

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fig1b = Workloads.Examples.fig1b

let paper_mesh () =
  Topology.relabel (Topology.mesh ~rows:2 ~cols:2)
    Workloads.Examples.fig1_mesh_permutation

let test_duration_formula () =
  let s =
    Schedule.empty ~speeds:[| 1; 3 |] fig1b (Cyclo.Comm.zero ~n:2 ~name:"z")
  in
  let b = Csdfg.node_of_label fig1b "B" in
  check "fast pe" 2 (Schedule.duration s ~node:b ~pe:0);
  check "slow pe" 6 (Schedule.duration s ~node:b ~pe:1);
  check_bool "heterogeneous" true (Schedule.is_heterogeneous s)

let test_speeds_validation () =
  let comm = Cyclo.Comm.zero ~n:2 ~name:"z" in
  check_bool "wrong size" true
    (match Schedule.empty ~speeds:[| 1 |] fig1b comm with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "non-positive" true
    (match Schedule.empty ~speeds:[| 1; 0 |] fig1b comm with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_uniform_speeds_is_default () =
  let topo = paper_mesh () in
  let plain = Startup.run_on fig1b topo in
  let uniform = Startup.run_on ~speeds:[| 1; 1; 1; 1 |] fig1b topo in
  check "identical schedules" 0 (Schedule.compare_assignments plain uniform);
  check_bool "not heterogeneous" false (Schedule.is_heterogeneous plain)

let test_assign_respects_slow_processor () =
  let s =
    Schedule.empty ~speeds:[| 1; 2 |] fig1b (Cyclo.Comm.zero ~n:2 ~name:"z")
  in
  let b = Csdfg.node_of_label fig1b "B" in
  let a = Csdfg.node_of_label fig1b "A" in
  let s = Schedule.assign s ~node:b ~cb:1 ~pe:1 in
  (* B stretches to 4 steps on the slow processor *)
  check "ce stretched" 4 (Schedule.ce s b);
  check "length" 4 (Schedule.length s);
  check_bool "slot 1-4 occupied" true
    (match Schedule.assign s ~node:a ~cb:4 ~pe:1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let s = Schedule.assign s ~node:a ~cb:5 ~pe:1 in
  check "A after B" 5 (Schedule.cb s a)

let test_startup_prefers_fast_processors () =
  (* Two processors, no communication, second one 5x slower: everything
     should land on the fast one (spreading to the slow one only delays
     completions the priority rule cares about). *)
  let comm = Cyclo.Comm.zero ~n:2 ~name:"z" in
  let s = Startup.run ~speeds:[| 1; 5 |] fig1b comm in
  Validator.assert_legal s;
  check_bool "simulate agrees" true (Validator.simulate s ~iterations:5 = Ok ())

let test_compaction_on_heterogeneous_machine () =
  let topo = paper_mesh () in
  let speeds = [| 1; 2; 1; 3 |] in
  let r = Compaction.run_on ~speeds fig1b topo in
  check_bool "legal" true (Validator.is_legal r.Cyclo.Compaction.best);
  check_bool "no longer than startup" true
    (Schedule.length r.Cyclo.Compaction.best
    <= Schedule.length r.Cyclo.Compaction.startup);
  check_bool "simulate agrees" true
    (Validator.simulate r.Cyclo.Compaction.best ~iterations:6 = Ok ())

let test_slow_machine_schedules_longer () =
  (* Making every processor k-times slower cannot shorten the table. *)
  let topo = Topology.complete 4 in
  let fast = Compaction.run_on fig1b topo in
  let slow = Compaction.run_on ~speeds:[| 2; 2; 2; 2 |] fig1b topo in
  check_bool "uniformly slower machine is slower" true
    (Schedule.length slow.Cyclo.Compaction.best
    >= Schedule.length fast.Cyclo.Compaction.best)

let test_machine_simulator_heterogeneous () =
  let topo = paper_mesh () in
  let r = Compaction.run_on ~speeds:[| 1; 2; 2; 1 |] fig1b topo in
  let best = r.Cyclo.Compaction.best in
  let stats = Machine.Simulator.execute best topo ~iterations:10 in
  check_bool "within static bound" true
    (stats.Machine.Simulator.makespan
    <= Machine.Simulator.static_bound best ~iterations:10);
  (* busy time counts stretched durations *)
  let total = Array.fold_left ( + ) 0 stats.Machine.Simulator.busy in
  let expected =
    10
    * List.fold_left
        (fun acc v ->
          acc + Schedule.duration best ~node:v ~pe:(Schedule.pe best v))
        0 (Csdfg.nodes fig1b)
  in
  check "busy accounting" expected total

let test_exhaustive_heterogeneous () =
  (* One fast and one slow processor, no comm: the exact optimum for
     tiny-chain keeps the chain on the fast processor (length 4). *)
  let g = Workloads.Examples.tiny_chain in
  let comm = Cyclo.Comm.zero ~n:2 ~name:"z" in
  match Cyclo.Exhaustive.solve ~speeds:[| 1; 10 |] g comm with
  | Cyclo.Exhaustive.Gave_up _ -> Alcotest.fail "tiny instance"
  | Cyclo.Exhaustive.Optimal s ->
      check "optimal length" 4 (Schedule.length s);
      List.iter (fun v -> check "on fast pe" 0 (Schedule.pe s v)) (Csdfg.nodes g)

let test_baseline_repair_keeps_speeds () =
  let topo = Topology.ring 4 in
  let speeds = [| 1; 2; 1; 2 |] in
  let zero = Cyclo.Comm.zero ~n:4 ~name:"z" in
  let oblivious = Startup.run ~speeds fig1b zero in
  let repaired = Cyclo.Baseline.repair oblivious (Cyclo.Comm.of_topology topo) in
  Alcotest.(check (array int)) "speeds preserved" speeds
    (Schedule.speeds repaired);
  check_bool "legal" true (Validator.is_legal repaired)

let test_metrics_utilization_heterogeneous () =
  (* A single slow processor: utilization is still exactly 1 because
     busy time is measured in stretched steps. *)
  let comm = Cyclo.Comm.zero ~n:1 ~name:"z" in
  let s = Startup.run ~speeds:[| 3 |] fig1b comm in
  Alcotest.(check (float 1e-9)) "utilization" 1.0 (Cyclo.Metrics.utilization s);
  check "length = 3x total time" (3 * Csdfg.total_time fig1b)
    (Schedule.length s)

let test_renderings_use_stretched_durations () =
  (* B (t=2) on a 3x-slow processor spans six steps in every rendering. *)
  let comm = Cyclo.Comm.zero ~n:2 ~name:"z" in
  let s = Schedule.empty ~speeds:[| 1; 3 |] fig1b comm in
  let s = Schedule.assign s ~node:(Csdfg.node_of_label fig1b "B") ~cb:1 ~pe:1 in
  let contains hay needle =
    let hl = String.length hay and nl = String.length needle in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let csv = Cyclo.Export.to_csv s in
  check_bool "csv ce stretched" true (contains csv "1,B,1,6,2");
  let json = Cyclo.Export.to_json s in
  check_bool "json duration stretched" true (contains json "\"time\":6");
  let gantt = Cyclo.Export.gantt s in
  check_bool "gantt draws a wide bar" true (contains gantt "B====")

let test_csv_roundtrip_with_speeds () =
  let comm = Cyclo.Comm.of_topology (paper_mesh ()) in
  let speeds = [| 1; 2; 1; 2 |] in
  let s = Startup.run ~speeds fig1b comm in
  match Cyclo.Export.of_csv ~speeds fig1b comm (Cyclo.Export.to_csv s) with
  | Error msg -> Alcotest.fail msg
  | Ok s' ->
      check "identical" 0 (Schedule.compare_assignments s s');
      Alcotest.(check (array int)) "speeds kept" speeds (Schedule.speeds s')

let test_property_random_speeds_legal () =
  for seed = 0 to 24 do
    let params =
      { Workloads.Random_gen.default with nodes = 8; feedback_edges = 2 }
    in
    let g = Workloads.Random_gen.generate_connected ~params ~seed () in
    let rng = Random.State.make [| seed |] in
    let topo = Topology.ring 4 in
    let speeds = Array.init 4 (fun _ -> 1 + Random.State.int rng 3) in
    let r = Compaction.run_on ~speeds g topo in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d legal" seed)
      true
      (Validator.is_legal r.Cyclo.Compaction.best);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d simulate" seed)
      true
      (Validator.simulate r.Cyclo.Compaction.best ~iterations:5 = Ok ())
  done

let () =
  Alcotest.run "heterogeneous"
    [
      ( "schedule",
        [
          Alcotest.test_case "duration" `Quick test_duration_formula;
          Alcotest.test_case "validation" `Quick test_speeds_validation;
          Alcotest.test_case "uniform = default" `Quick
            test_uniform_speeds_is_default;
          Alcotest.test_case "slow occupancy" `Quick
            test_assign_respects_slow_processor;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "startup" `Quick test_startup_prefers_fast_processors;
          Alcotest.test_case "compaction" `Quick
            test_compaction_on_heterogeneous_machine;
          Alcotest.test_case "slower machine" `Quick
            test_slow_machine_schedules_longer;
          Alcotest.test_case "random speeds" `Quick
            test_property_random_speeds_legal;
        ] );
      ( "integration",
        [
          Alcotest.test_case "simulator" `Quick test_machine_simulator_heterogeneous;
          Alcotest.test_case "exhaustive" `Quick test_exhaustive_heterogeneous;
          Alcotest.test_case "baseline repair" `Quick
            test_baseline_repair_keeps_speeds;
          Alcotest.test_case "metrics" `Quick
            test_metrics_utilization_heterogeneous;
          Alcotest.test_case "renderings" `Quick
            test_renderings_use_stretched_durations;
          Alcotest.test_case "csv roundtrip" `Quick
            test_csv_roundtrip_with_speeds;
        ] );
    ]
