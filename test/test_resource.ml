(* Resource attribution (Obs.Resource): the disabled fast path, span
   nesting with per-domain monotone counters (children never account
   for more allocation than their parent), process-level sampling, the
   process/gc gauge families in the Prometheus exposition, and a golden
   byte-identity test: enabling resource probes leaves the fig7 /
   mesh-2x4 compacted schedule byte-identical to the golden
   signature. *)

module Trace = Obs.Trace
module Counters = Obs.Counters
module Resource = Obs.Resource
module E = Obs.Exposition
module Schedule = Cyclo.Schedule
module Compaction = Cyclo.Compaction

let quiet () =
  Trace.disable ();
  Counters.disable ();
  Resource.disable ();
  Trace.reset ();
  Counters.reset ();
  Resource.reset ()

(* ------------------------------------------------------------------ *)
(* Fast path                                                            *)
(* ------------------------------------------------------------------ *)

let test_disabled_is_noop () =
  quiet ();
  let r = Resource.with_span "unrecorded" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span passes the result through" 42 r;
  Alcotest.(check int) "no span recorded" 0 (List.length (Resource.spans ()));
  (* the Trace wrapper path is also a no-op while Resource is off *)
  let r' = Trace.with_span "also.unrecorded" (fun () -> "ok") in
  Alcotest.(check string) "trace probe passes through" "ok" r';
  Alcotest.(check int) "still no span" 0 (List.length (Resource.spans ()))

(* ------------------------------------------------------------------ *)
(* Span nesting and attribution                                         *)
(* ------------------------------------------------------------------ *)

(* Allocate [n] boxed pairs so the span demonstrably touches the minor
   heap; return something depending on the data so nothing is dead. *)
let churn n =
  let acc = ref 0 in
  for i = 1 to n do
    let p = (i, i + 1) in
    acc := !acc + fst p
  done;
  !acc

let test_nesting_structure () =
  quiet ();
  Resource.enable ();
  let _ =
    Resource.with_span "parent" (fun () ->
        let a = Resource.with_span "child.a" (fun () -> churn 500) in
        let b = Resource.with_span "child.b" (fun () -> churn 500) in
        a + b)
  in
  Resource.disable ();
  let spans = Resource.spans () in
  Alcotest.(check (list (pair int string)))
    "depth and begin order"
    [ (0, "parent"); (1, "child.a"); (1, "child.b") ]
    (List.map (fun s -> (s.Resource.depth, s.Resource.name)) spans);
  List.iter
    (fun s ->
      Alcotest.(check int) "single domain" 0 s.Resource.domain;
      Alcotest.(check bool) (s.Resource.name ^ " minor_words >= 0") true
        (s.Resource.minor_words >= 0);
      Alcotest.(check bool) (s.Resource.name ^ " top_heap growth >= 0") true
        (s.Resource.top_heap_words >= 0))
    spans;
  Alcotest.(check (list int)) "per-domain seq numbers" [ 0; 1; 2 ]
    (List.map (fun s -> s.Resource.seq) spans);
  quiet ()

(* Within one domain the GC counters are monotone, so the deltas of
   nested child spans can sum to at most their enclosing parent's. *)
let test_children_bounded_by_parent =
  QCheck.Test.make ~count:50 ~name:"child span deltas sum <= parent"
    QCheck.(list_of_size Gen.(1 -- 6) (100 -- 2_000))
    (fun sizes ->
      quiet ();
      Resource.enable ();
      let _ =
        Resource.with_span "parent" (fun () ->
            List.iteri
              (fun i n ->
                ignore
                  (Resource.with_span
                     (Printf.sprintf "child.%d" i)
                     (fun () -> churn n)))
              sizes)
      in
      Resource.disable ();
      let spans = Resource.spans () in
      let parent =
        List.find (fun s -> s.Resource.name = "parent") spans
      in
      let children =
        List.filter (fun s -> s.Resource.depth = 1) spans
      in
      let sum f = List.fold_left (fun a s -> a + f s) 0 children in
      let ok =
        List.length children = List.length sizes
        && sum (fun s -> s.Resource.minor_words) <= parent.Resource.minor_words
        && sum (fun s -> s.Resource.major_words) <= parent.Resource.major_words
        && sum (fun s -> s.Resource.minor_collections)
           <= parent.Resource.minor_collections
        && sum (fun s -> s.Resource.major_collections)
           <= parent.Resource.major_collections
        && List.for_all (fun s -> s.Resource.minor_words >= 0) spans
      in
      quiet ();
      ok)

(* ------------------------------------------------------------------ *)
(* Process-level sampling                                               *)
(* ------------------------------------------------------------------ *)

let test_process_sample () =
  let a = Resource.sample_process () in
  Alcotest.(check bool) "rss positive" true (a.Resource.rss_bytes > 0);
  Alcotest.(check bool) "peak >= current" true
    (a.Resource.peak_rss_bytes >= a.Resource.rss_bytes);
  Alcotest.(check bool) "heap words positive" true
    (a.Resource.heap_words > 0);
  Alcotest.(check bool) "top heap >= heap" true
    (a.Resource.p_top_heap_words >= 0);
  ignore (churn 10_000);
  let b = Resource.sample_process () in
  (* cumulative GC totals never go backwards between two samples *)
  Alcotest.(check bool) "minor words monotone" true
    (b.Resource.p_minor_words >= a.Resource.p_minor_words);
  Alcotest.(check bool) "major words monotone" true
    (b.Resource.p_major_words >= a.Resource.p_major_words);
  Alcotest.(check bool) "minor collections monotone" true
    (b.Resource.p_minor_collections >= a.Resource.p_minor_collections);
  Alcotest.(check bool) "peak monotone" true
    (b.Resource.peak_rss_bytes >= a.Resource.peak_rss_bytes)

let test_gauges_in_exposition () =
  quiet ();
  Counters.enable ();
  let payload = E.render () in
  Counters.disable ();
  let fams =
    match E.parse payload with
    | Ok f -> f
    | Error m -> Alcotest.fail ("scrape does not parse: " ^ m)
  in
  let gauge name =
    match E.find fams name with
    | Some { E.fam_kind = E.Gauge; _ } -> E.value fams name
    | Some _ -> Alcotest.fail (name ^ " is not a gauge")
    | None -> Alcotest.fail (name ^ " missing from scrape")
  in
  let counter name =
    match E.find fams name with
    | Some { E.fam_kind = E.Counter; _ } -> E.value fams name
    | Some _ -> Alcotest.fail (name ^ " is not a counter")
    | None -> Alcotest.fail (name ^ " missing from scrape")
  in
  Alcotest.(check bool) "live rss gauge" true
    (gauge "ccsched_process_resident_memory_bytes" > Some 0.);
  Alcotest.(check bool) "peak >= rss in the same scrape" true
    (gauge "ccsched_process_peak_resident_memory_bytes"
    >= gauge "ccsched_process_resident_memory_bytes");
  Alcotest.(check bool) "heap gauge" true
    (gauge "ccsched_gc_heap_words" > Some 0.);
  Alcotest.(check bool) "minor words counter" true
    (counter "ccsched_gc_minor_words" >= Some 0.);
  Alcotest.(check bool) "collections counter" true
    (counter "ccsched_gc_minor_collections" >= Some 0.);
  quiet ()

(* ------------------------------------------------------------------ *)
(* Rollup JSON                                                          *)
(* ------------------------------------------------------------------ *)

let test_rollup_json () =
  quiet ();
  Resource.enable ();
  ignore (Resource.with_span "phase.one" (fun () -> churn 1_000));
  ignore (Resource.with_span "phase.one" (fun () -> churn 1_000));
  ignore (Resource.with_span "phase.two" (fun () -> churn 1_000));
  Resource.disable ();
  let json = Resource.rollup_json () in
  match Obs.Json.parse json with
  | Error m -> Alcotest.fail ("rollup is not valid JSON: " ^ m)
  | Ok j ->
      let spans =
        Option.bind (Obs.Json.member "spans" j) Obs.Json.to_list
        |> Option.value ~default:[]
      in
      let name s =
        Option.bind (Obs.Json.member "span" s) Obs.Json.to_str
      in
      Alcotest.(check (list (option string)))
        "rolled up by name, sorted"
        [ Some "phase.one"; Some "phase.two" ]
        (List.map name spans);
      let count s =
        Option.bind (Obs.Json.member "count" s) Obs.Json.to_int
      in
      Alcotest.(check (list (option int)))
        "counts" [ Some 2; Some 1 ] (List.map count spans);
      Alcotest.(check bool) "has process block" true
        (Obs.Json.member "process" j <> None);
      quiet ()

(* ------------------------------------------------------------------ *)
(* Golden byte-identity: fig7 on mesh-2x4 with probes live              *)
(* ------------------------------------------------------------------ *)

(* From test_golden_signatures.ml — the compacted best schedule must
   stay byte-identical with resource attribution enabled, exactly as
   test_obs.ml pins it for wall-clock tracing. *)
let fig7_mesh2x4_best =
  "6;1@0;3@4;3@1;4@4;5@4;1@5;2@2;6@1;3@2;3@5;4@2;5@5;6@4;5@2;2@0;3@0;2@1;1@4;5@0"

let test_golden_with_probes () =
  let g =
    match Dataflow.Io.read_file ~path:"../data/fig7.csdfg" with
    | Ok g -> g
    | Error e -> Alcotest.fail (Dataflow.Io.error_to_string e)
  in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  quiet ();
  Resource.enable ();
  let r = Compaction.run_on ~validate:false g topo in
  Resource.disable ();
  Alcotest.(check string)
    "schedule byte-identical with resource probes on" fig7_mesh2x4_best
    (Schedule.signature r.Compaction.best);
  (* attribution rode the Trace probes even with wall-clock tracing off *)
  let agg = Resource.aggregate () in
  let rollup name = List.assoc_opt name agg in
  Alcotest.(check bool) "compaction.run attributed" true
    (match rollup "compaction.run" with
    | Some ru -> ru.Resource.r_count = 1 && ru.Resource.r_minor_words > 0
    | None -> false);
  Alcotest.(check bool) "startup.run attributed" true
    (rollup "startup.run" <> None);
  Alcotest.(check bool) "per-pass spans attributed" true
    (match rollup "compaction.pass" with
    | Some ru -> ru.Resource.r_count > 1
    | None -> false);
  quiet ()

let () =
  Alcotest.run "resource"
    [
      ( "fast-path",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_disabled_is_noop;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting structure" `Quick
            test_nesting_structure;
          QCheck_alcotest.to_alcotest test_children_bounded_by_parent;
        ] );
      ( "process",
        [
          Alcotest.test_case "sample sanity" `Quick test_process_sample;
          Alcotest.test_case "gauges in the exposition" `Quick
            test_gauges_in_exposition;
        ] );
      ( "export",
        [ Alcotest.test_case "rollup json" `Quick test_rollup_json ] );
      ( "golden",
        [
          Alcotest.test_case "byte-identical schedule" `Quick
            test_golden_with_probes;
        ] );
    ]
