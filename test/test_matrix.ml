(* The full cross product: every built-in workload on every paper
   architecture under both remapping modes.  Everything must produce a
   validator-legal schedule no longer than its start-up schedule, and
   never beat the iteration bound. *)

module Schedule = Cyclo.Schedule
module Compaction = Cyclo.Compaction

let architectures () =
  [
    ("complete8", Topology.complete 8);
    ("linear8", Topology.linear_array 8);
    ("ring8", Topology.ring 8);
    ("mesh2x4", Topology.mesh ~rows:2 ~cols:4);
    ("cube3", Topology.hypercube 3);
  ]

let test_everything () =
  let cells = ref 0 in
  List.iter
    (fun (wname, g) ->
      let bound = Dataflow.Iteration_bound.exact_ceil ~max_cycles:50_000 g in
      List.iter
        (fun (aname, topo) ->
          List.iter
            (fun (mname, mode) ->
              incr cells;
              let label = Printf.sprintf "%s/%s/%s" wname aname mname in
              let r =
                Compaction.run_on ~mode ~passes:25 ~validate:false g topo
              in
              Alcotest.(check bool)
                (label ^ ": legal") true
                (Cyclo.Validator.is_legal r.Compaction.best);
              Alcotest.(check bool)
                (label ^ ": best <= startup")
                true
                (Schedule.length r.Compaction.best
                <= Schedule.length r.Compaction.startup);
              match bound with
              | None -> ()
              | Some b ->
                  Alcotest.(check bool)
                    (label ^ ": respects the iteration bound")
                    true
                    (Schedule.length r.Compaction.best >= b))
            [
              ("relax", Cyclo.Remap.With_relaxation);
              ("strict", Cyclo.Remap.Without_relaxation);
            ])
        (architectures ()))
    (Workloads.Suite.all ());
  Alcotest.(check bool)
    (Printf.sprintf "covered %d cells" !cells)
    true (!cells >= 180)

let () =
  Alcotest.run "matrix"
    [
      ( "workloads-x-architectures-x-modes",
        [ Alcotest.test_case "full sweep" `Slow test_everything ] );
    ]
