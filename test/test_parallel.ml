(* The domains-based parallel map must be indistinguishable from
   List.map except for wall-clock time. *)

let check_bool = Alcotest.(check bool)

let test_matches_sequential () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "same results, same order"
    (List.map (fun x -> (x * x) + 1) xs)
    (Parutil.Parallel.map (fun x -> (x * x) + 1) xs)

let test_mapi_indices () =
  let xs = [ "a"; "b"; "c"; "d" ] in
  Alcotest.(check (list string))
    "indices line up"
    (List.mapi (fun i s -> Printf.sprintf "%d%s" i s) xs)
    (Parutil.Parallel.mapi (fun i s -> Printf.sprintf "%d%s" i s) xs)

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Parutil.Parallel.map succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Parutil.Parallel.map succ [ 1 ])

let test_explicit_domain_counts () =
  let xs = List.init 37 Fun.id in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "domains=%d" domains)
        (List.map succ xs)
        (Parutil.Parallel.map ~domains succ xs))
    [ 1; 2; 3; 8; 64 ]

exception Boom of int

let test_exception_propagates () =
  let xs = List.init 20 Fun.id in
  check_bool "raises Boom" true
    (match
       Parutil.Parallel.map ~domains:4
         (fun x -> if x = 13 then raise (Boom x) else x)
         xs
     with
    | _ -> false
    | exception Boom 13 -> true
    | exception _ -> false)

(* The worker's backtrace must survive the cross-domain re-raise: the
   coordinator re-raises with [Printexc.raise_with_backtrace], so the
   frame that actually raised — this function, in this file — is still
   on the recorded trace, not just the re-raise site in parallel.ml. *)
let[@inline never] detonate x = if x = 13 then raise (Boom x) else x

let test_backtrace_preserved () =
  let prev = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  let bt =
    match Parutil.Parallel.map ~domains:4 detonate (List.init 20 Fun.id) with
    | _ -> ""
    | exception Boom 13 -> Printexc.get_backtrace ()
    | exception _ -> ""
  in
  Printexc.record_backtrace prev;
  check_bool "backtrace mentions the raising worker frame" true
    (let needle = "test_parallel" in
     let n = String.length needle and len = String.length bt in
     let rec scan i =
       i + n <= len && (String.sub bt i n = needle || scan (i + 1))
     in
     scan 0)

let test_recommended_positive () =
  check_bool "at least one domain" true (Parutil.Parallel.recommended_domains () >= 1)

let test_parallel_compaction_batch () =
  (* the real use: a batch of compactions gives identical lengths in
     parallel and sequentially *)
  let cells =
    [
      (Workloads.Examples.fig1b, Topology.complete 4);
      (Workloads.Dsp.diffeq, Topology.ring 4);
      (Workloads.Dsp.iir_biquad, Topology.mesh ~rows:2 ~cols:2);
      (Workloads.Kernels.volterra, Topology.hypercube 2);
    ]
  in
  let run (g, topo) =
    Cyclo.Schedule.length
      (Cyclo.Compaction.run_on ~validate:false g topo).Cyclo.Compaction.best
  in
  Alcotest.(check (list int))
    "parallel batch = sequential batch" (List.map run cells)
    (Parutil.Parallel.map ~domains:4 run cells)

let () =
  Alcotest.run "parallel"
    [
      ( "parallel-map",
        [
          Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
          Alcotest.test_case "mapi" `Quick test_mapi_indices;
          Alcotest.test_case "edge sizes" `Quick test_empty_and_singleton;
          Alcotest.test_case "domain counts" `Quick test_explicit_domain_counts;
          Alcotest.test_case "exceptions" `Quick test_exception_propagates;
          Alcotest.test_case "backtrace preserved" `Quick
            test_backtrace_preserved;
          Alcotest.test_case "recommended" `Quick test_recommended_positive;
          Alcotest.test_case "compaction batch" `Quick
            test_parallel_compaction_batch;
        ] );
    ]
