(* Tests for the event-driven machine simulator: the executable model
   must agree with the analytical one under the paper's assumptions, and
   quantify the gap when they are relaxed. *)

module Csdfg = Dataflow.Csdfg
module Schedule = Cyclo.Schedule
module Sim = Machine.Simulator

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let paper_mesh () =
  Topology.relabel (Topology.mesh ~rows:2 ~cols:2)
    Workloads.Examples.fig1_mesh_permutation

let compacted g topo =
  (Cyclo.Compaction.run_on g topo).Cyclo.Compaction.best

let test_static_bound_formula () =
  let s = Cyclo.Startup.run_on Workloads.Examples.fig1b (paper_mesh ()) in
  (* length 7, max CE 7 *)
  check "1 iteration" 7 (Sim.static_bound s ~iterations:1);
  check "10 iterations" (63 + 7) (Sim.static_bound s ~iterations:10)

let test_contention_free_meets_static_bound () =
  (* Self-timed execution of a legal schedule can never be slower than
     the static promise under the paper's contention-free model. *)
  List.iter
    (fun (name, g) ->
      List.iter
        (fun topo ->
          let s = compacted g topo in
          let stats = Sim.execute s topo ~iterations:12 in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s within bound" name (Topology.name topo))
            true
            (stats.Sim.makespan <= Sim.static_bound s ~iterations:12))
        [ Topology.ring 4; Topology.mesh ~rows:2 ~cols:2 ])
    [
      ("fig1b", Workloads.Examples.fig1b);
      ("fig7", Workloads.Examples.fig7);
      ("diffeq", Workloads.Dsp.diffeq);
    ]

let test_period_matches_schedule_length () =
  let g = Workloads.Examples.fig7 in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let s = compacted g topo in
  let stats = Sim.execute s topo ~iterations:50 in
  Alcotest.(check (float 0.26)) "sustained period ~= length"
    (float_of_int (Schedule.length s))
    stats.Sim.average_period;
  check_bool "slowdown <= 1 under the paper's model" true
    (Sim.slowdown stats s <= 1.0 +. 1e-9)

let test_fifo_never_faster_than_free () =
  List.iter
    (fun (name, g) ->
      let topo = Topology.linear_array 4 in
      let s = compacted g topo in
      let free = Sim.execute ~policy:Sim.Contention_free s topo ~iterations:20 in
      let fifo = Sim.execute ~policy:Sim.Fifo_links s topo ~iterations:20 in
      Alcotest.(check bool)
        (name ^ ": fifo >= free")
        true
        (fifo.Sim.makespan >= free.Sim.makespan);
      check (name ^ ": same messages") free.Sim.messages fifo.Sim.messages;
      check (name ^ ": same hops") free.Sim.message_hops fifo.Sim.message_hops;
      check (name ^ ": free has no backlog") 0 free.Sim.max_link_backlog)
    [ ("fig7", Workloads.Examples.fig7); ("fig1b", Workloads.Examples.fig1b) ]

let test_fifo_contention_degrades_saturated_link () =
  (* Three producers on one star leaf each ship volume 4 to consumers on
     the other leaf every iteration: 12 busy units per iteration through
     the hub link, against a table of length 9.  The contention-free
     model sustains period 9; single-channel FIFO links cannot. *)
  let g =
    Csdfg.make ~name:"hub-jam"
      ~nodes:[ ("P1", 1); ("P2", 1); ("P3", 1); ("C1", 1); ("C2", 1); ("C3", 1) ]
      ~edges:
        [
          ("P1", "C1", 1, 4); ("C1", "P1", 1, 1);
          ("P2", "C2", 1, 4); ("C2", "P2", 1, 1);
          ("P3", "C3", 1, 4); ("C3", "P3", 1, 1);
        ]
  in
  let topo = Topology.star 3 in
  let s = Schedule.empty g (Cyclo.Comm.of_topology topo) in
  let place s l cb pe = Schedule.assign s ~node:(Csdfg.node_of_label g l) ~cb ~pe in
  let s = place s "P1" 1 1 in
  let s = place s "P2" 2 1 in
  let s = place s "P3" 3 1 in
  let s = place s "C1" 1 2 in
  let s = place s "C2" 2 2 in
  let s = place s "C3" 3 2 in
  let s = Schedule.set_length s (Cyclo.Timing.required_length s) in
  check "PSL-padded length" 9 (Schedule.length s);
  Cyclo.Validator.assert_legal s;
  let free = Sim.execute ~policy:Sim.Contention_free s topo ~iterations:30 in
  let fifo = Sim.execute ~policy:Sim.Fifo_links s topo ~iterations:30 in
  (* Self-timed execution with free channels beats the static table
     (period 6 < 9); serialising the hub link costs several steps per
     iteration and builds a queue. *)
  check_bool "model beats the static period" true
    (free.Sim.average_period <= 9.0 +. 1e-9);
  check_bool "FIFO strictly slower" true
    (fifo.Sim.average_period > free.Sim.average_period +. 1.0);
  check_bool "FIFO makespan strictly larger" true
    (fifo.Sim.makespan > free.Sim.makespan);
  check_bool "messages queue on the hub link" true
    (fifo.Sim.max_link_backlog >= 2)

let test_wormhole_cost_model () =
  let topo = Topology.linear_array 4 in
  let c = Cyclo.Comm.wormhole topo in
  (* 3 hops, volume 5: header 3 + 4 trailing flits = 7, vs SAF 15 *)
  check "wormhole cost" 7 (Cyclo.Comm.cost c ~src:0 ~dst:3 ~volume:5);
  check "same pe" 0 (Cyclo.Comm.cost c ~src:2 ~dst:2 ~volume:5);
  (* pointwise never more expensive than store-and-forward *)
  let saf = Cyclo.Comm.of_topology topo in
  for p = 0 to 3 do
    for q = 0 to 3 do
      for v = 1 to 4 do
        check_bool "wormhole <= saf" true
          (Cyclo.Comm.cost c ~src:p ~dst:q ~volume:v
          <= Cyclo.Comm.cost saf ~src:p ~dst:q ~volume:v)
      done
    done
  done

let test_wormhole_schedule_executes () =
  let g = Workloads.Examples.fig7 in
  let topo = Topology.linear_array 8 in
  let r = Cyclo.Compaction.run g (Cyclo.Comm.wormhole topo) in
  let best = r.Cyclo.Compaction.best in
  check_bool "legal" true (Cyclo.Validator.is_legal best);
  let stats =
    Sim.execute ~transport:Sim.Wormhole best topo ~iterations:25
  in
  check_bool "within static bound" true
    (stats.Sim.makespan <= Sim.static_bound best ~iterations:25);
  check_bool "sustains the period" true (Sim.slowdown stats best <= 1.0 +. 1e-9)

let test_wormhole_fifo_not_faster () =
  let g = Workloads.Examples.fig7 in
  let topo = Topology.linear_array 8 in
  let r = Cyclo.Compaction.run g (Cyclo.Comm.wormhole topo) in
  let best = r.Cyclo.Compaction.best in
  let free =
    Sim.execute ~transport:Sim.Wormhole ~policy:Sim.Contention_free best topo
      ~iterations:20
  in
  let fifo =
    Sim.execute ~transport:Sim.Wormhole ~policy:Sim.Fifo_links best topo
      ~iterations:20
  in
  check_bool "reserved paths never faster" true
    (fifo.Sim.makespan >= free.Sim.makespan)

let test_with_comm_recosting () =
  (* A store-and-forward schedule re-costed under wormhole stays legal
     and never needs a longer table. *)
  let g = Workloads.Examples.fig7 in
  let topo = Topology.linear_array 8 in
  let saf = compacted g topo in
  let recosted = Schedule.with_comm saf (Cyclo.Comm.wormhole topo) in
  let recosted =
    Schedule.set_length recosted (Cyclo.Timing.required_length recosted)
  in
  check_bool "legal under cheaper costs" true (Cyclo.Validator.is_legal recosted);
  check_bool "no longer than before" true
    (Schedule.length recosted <= Schedule.length saf);
  check_bool "processor count checked" true
    (match Schedule.with_comm saf (Cyclo.Comm.zero ~n:3 ~name:"z") with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_single_processor_no_messages () =
  let g = Workloads.Examples.fig1b in
  let topo = Topology.linear_array 1 in
  let s = Cyclo.Startup.run_on g topo in
  let stats = Sim.execute s topo ~iterations:5 in
  check "no messages" 0 stats.Sim.messages;
  check "makespan = 5 * total time" (5 * Csdfg.total_time g) stats.Sim.makespan;
  Alcotest.(check (float 1e-9)) "full utilization" 1.0 stats.Sim.utilization

let test_self_loop_instance_chain () =
  (* X (t=2) with a unit-delay self-dependence: iterations strictly
     serialize; makespan = 2 * iterations. *)
  let g = Workloads.Examples.self_loop in
  let topo = Topology.linear_array 1 in
  let s = Cyclo.Startup.run_on g topo in
  let stats = Sim.execute s topo ~iterations:7 in
  check "serialized" 14 stats.Sim.makespan

let test_busy_accounting () =
  let g = Workloads.Examples.fig7 in
  let topo = Topology.complete 8 in
  let s = compacted g topo in
  let stats = Sim.execute s topo ~iterations:10 in
  let total = Array.fold_left ( + ) 0 stats.Sim.busy in
  check "busy = 10 * total work" (10 * Csdfg.total_time g) total

let test_message_count_formula () =
  (* Cross-processor deliveries: one per edge instance whose consumer
     iteration lands inside the run. *)
  let g = Workloads.Examples.fig1b in
  let topo = paper_mesh () in
  let s = compacted g topo in
  let iterations = 9 in
  (* count against the schedule's own (retimed) graph *)
  let expected =
    List.fold_left
      (fun acc e ->
        let cross =
          Schedule.pe s e.Digraph.Graph.src <> Schedule.pe s e.Digraph.Graph.dst
        in
        if cross then acc + max 0 (iterations - Csdfg.delay e) else acc)
      0
      (Csdfg.edges (Schedule.dfg s))
  in
  let stats = Sim.execute s topo ~iterations in
  check "messages" expected stats.Sim.messages

let test_weighted_topology_execution () =
  (* Two processors joined by a latency-3 link: a volume-1 message takes
     3 steps, matching the analytical model. *)
  let topo = Topology.of_weighted_links ~name:"slow-pair" ~n:2 [ (0, 1, 3) ] in
  let g = Workloads.Examples.tiny_chain in
  let r = Cyclo.Compaction.run_on g topo in
  let s = r.Cyclo.Compaction.best in
  let stats = Sim.execute s topo ~iterations:10 in
  check_bool "still meets static bound" true
    (stats.Sim.makespan <= Sim.static_bound s ~iterations:10)

let test_illegal_schedule_deadlocks () =
  (* B scheduled before its zero-delay producer A on the same processor:
     in-order issue can never satisfy B's input — the engine reports a
     deadlock instead of hanging or producing garbage. *)
  let g =
    Csdfg.make ~name:"dl" ~nodes:[ ("A", 1); ("B", 1) ]
      ~edges:[ ("A", "B", 0, 1); ("B", "A", 1, 1) ]
  in
  let topo = Topology.linear_array 1 in
  let s = Schedule.empty g (Cyclo.Comm.of_topology topo) in
  let s = Schedule.assign s ~node:1 ~cb:1 ~pe:0 in
  let s = Schedule.assign s ~node:0 ~cb:2 ~pe:0 in
  check_bool "validator flags it" false (Cyclo.Validator.is_legal s);
  check_bool "simulator reports deadlock" true
    (match Sim.execute s topo ~iterations:3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_rejects_bad_inputs () =
  let g = Workloads.Examples.fig1b in
  let topo = paper_mesh () in
  let s = Cyclo.Startup.run_on g topo in
  check_bool "iterations < 1" true
    (match Sim.execute s topo ~iterations:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "topology mismatch" true
    (match Sim.execute s (Topology.linear_array 2) ~iterations:3 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let incomplete = Schedule.unassign s (Csdfg.node_of_label g "A") in
  check_bool "incomplete schedule" true
    (match Sim.execute incomplete topo ~iterations:3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_all_workloads_simulate () =
  List.iter
    (fun (name, g) ->
      let topo = Topology.hypercube 3 in
      let s = compacted g topo in
      let stats = Sim.execute s topo ~iterations:8 in
      Alcotest.(check bool)
        (name ^ " within static bound")
        true
        (stats.Sim.makespan <= Sim.static_bound s ~iterations:8))
    (Workloads.Suite.all ())

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

module Events = Machine.Events
module Audit = Machine.Audit
module Timeline = Machine.Timeline

let stats_equal a b =
  a.Sim.policy = b.Sim.policy
  && a.Sim.transport = b.Sim.transport
  && a.Sim.iterations = b.Sim.iterations
  && a.Sim.makespan = b.Sim.makespan
  && a.Sim.average_period = b.Sim.average_period
  && a.Sim.messages = b.Sim.messages
  && a.Sim.message_hops = b.Sim.message_hops
  && a.Sim.max_link_backlog = b.Sim.max_link_backlog
  && a.Sim.busy = b.Sim.busy
  && a.Sim.per_pe_utilization = b.Sim.per_pe_utilization
  && a.Sim.utilization = b.Sim.utilization

let test_recorder_tallies_match_stats () =
  (* Every policy/transport combination: the recorded stream must agree
     event-for-event with the aggregate stats. *)
  let g = Workloads.Examples.fig7 in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let iterations = 12 in
  List.iter
    (fun (name, policy, transport) ->
      let s =
        match transport with
        | Sim.Store_and_forward -> compacted g topo
        | Sim.Wormhole ->
            (Cyclo.Compaction.run g (Cyclo.Comm.wormhole topo))
              .Cyclo.Compaction.best
      in
      let rec_ = Events.recorder () in
      let stats =
        Sim.execute ~policy ~transport ~recorder:rec_ s topo ~iterations
      in
      let evs = Events.events rec_ in
      check (name ^ ": deliveries = messages") stats.Sim.messages
        (Events.deliveries evs);
      check (name ^ ": hop events = message_hops") stats.Sim.message_hops
        (Events.hops evs);
      let n_inst = Csdfg.n_nodes (Schedule.dfg s) * iterations in
      let count p = List.length (List.filter p evs) in
      check (name ^ ": every instance starts") n_inst
        (count (function Events.Instance_start _ -> true | _ -> false));
      check (name ^ ": every instance finishes") n_inst
        (count (function Events.Instance_finish _ -> true | _ -> false));
      check (name ^ ": sends = deliveries") stats.Sim.messages
        (count (function Events.Msg_send _ -> true | _ -> false)))
    [
      ("free/saf", Sim.Contention_free, Sim.Store_and_forward);
      ("fifo/saf", Sim.Fifo_links, Sim.Store_and_forward);
      ("free/worm", Sim.Contention_free, Sim.Wormhole);
      ("fifo/worm", Sim.Fifo_links, Sim.Wormhole);
    ]

let test_recording_is_observational () =
  (* A run with the recorder attached returns byte-identical stats to a
     run without it — the recorder must never perturb the simulation. *)
  let g = Workloads.Dsp.correlator ~lags:4 in
  let topo = Topology.linear_array 8 in
  let s = compacted g topo in
  List.iter
    (fun policy ->
      let plain = Sim.execute ~policy s topo ~iterations:20 in
      let rec_ = Events.recorder () in
      let recorded =
        Sim.execute ~policy ~recorder:rec_ s topo ~iterations:20
      in
      check_bool "identical stats" true (stats_equal plain recorded);
      check_bool "something was recorded" true (Events.count rec_ > 0))
    [ Sim.Contention_free; Sim.Fifo_links ]

let test_busy_array_is_a_copy () =
  (* The satellite fix: stats.busy used to alias the simulator's
     internal accumulator. *)
  let g = Workloads.Examples.fig7 in
  let topo = Topology.complete 8 in
  let s = compacted g topo in
  let a = Sim.execute s topo ~iterations:5 in
  let expected = Array.copy a.Sim.busy in
  a.Sim.busy.(0) <- -12345;
  let b = Sim.execute s topo ~iterations:5 in
  check "fresh run unaffected by caller mutation" expected.(0) b.Sim.busy.(0);
  check_bool "whole array matches" true (b.Sim.busy = expected)

let test_per_pe_utilization () =
  let g = Workloads.Examples.fig7 in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let s = compacted g topo in
  let stats = Sim.execute s topo ~iterations:10 in
  check "one entry per processor" (Topology.n_processors topo)
    (Array.length stats.Sim.per_pe_utilization);
  Array.iteri
    (fun p u ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "pe%d utilization = busy / makespan" (p + 1))
        (float_of_int stats.Sim.busy.(p) /. float_of_int stats.Sim.makespan)
        u)
    stats.Sim.per_pe_utilization;
  let mean =
    Array.fold_left ( +. ) 0. stats.Sim.per_pe_utilization
    /. float_of_int (Array.length stats.Sim.per_pe_utilization)
  in
  Alcotest.(check (float 1e-9))
    "mean of per-PE = aggregate" stats.Sim.utilization mean

let test_stall_counters_and_histograms () =
  Obs.Counters.enable ();
  Obs.Histogram.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Counters.disable ();
      Obs.Histogram.disable ())
    (fun () ->
      let g = Workloads.Dsp.correlator ~lags:4 in
      let topo = Topology.linear_array 8 in
      let s = compacted g topo in
      let stats =
        Sim.execute ~policy:Sim.Fifo_links s topo ~iterations:40
      in
      check_bool "contended run counts stalls" true
        (Obs.Counters.value (Obs.Counters.counter "simulator.stalls") > 0);
      check "backlog gauge mirrors stats" stats.Sim.max_link_backlog
        (Obs.Counters.value
           (Obs.Counters.counter "simulator.max_link_backlog"));
      let latency = Obs.Histogram.histogram "simulator.msg_latency" in
      check "one latency sample per delivery" stats.Sim.messages
        (Obs.Histogram.count latency);
      let slip = Obs.Histogram.histogram "simulator.instance_slip" in
      check "one slip sample per instance"
        (Csdfg.n_nodes (Schedule.dfg s) * 40)
        (Obs.Histogram.count slip))

let test_jsonl_export_well_formed () =
  let g = Workloads.Examples.fig7 in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let s = compacted g topo in
  let rec_ = Events.recorder () in
  let _ =
    Sim.execute ~policy:Sim.Fifo_links ~recorder:rec_ s topo ~iterations:6
  in
  let evs = Events.events rec_ in
  let lines =
    String.split_on_char '\n' (Events.to_jsonl evs)
    |> List.filter (fun l -> l <> "")
  in
  check "header + one line per event" (1 + Events.count rec_)
    (List.length lines);
  List.iteri
    (fun i line ->
      match Obs.Json.parse line with
      | Ok json ->
          if i = 0 then
            Alcotest.(check (option string))
              "schema header" (Some "ccsched-sim-events/2")
              (Option.bind (Obs.Json.member "schema" json) Obs.Json.to_str)
          else
            check_bool "has ev discriminator" true
              (Option.is_some (Obs.Json.member "ev" json))
      | Error msg -> Alcotest.failf "line %d unparseable: %s" i msg)
    lines;
  (* times are non-decreasing in the export *)
  let times =
    List.filter_map
      (fun l ->
        match Obs.Json.parse l with
        | Ok json -> Option.bind (Obs.Json.member "t" json) Obs.Json.to_int
        | Error _ -> None)
      lines
  in
  check_bool "sorted by time" true
    (List.for_all2 (fun a b -> a <= b)
       (List.filteri (fun i _ -> i < List.length times - 1) times)
       (List.tl times))

let test_timeline_views () =
  let g = Workloads.Examples.fig7 in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let s = compacted g topo in
  let rec_ = Events.recorder () in
  let _ =
    Sim.execute ~policy:Sim.Fifo_links ~recorder:rec_ s topo ~iterations:4
  in
  let evs = Events.events rec_ in
  let np = Topology.n_processors topo in
  let svg = Timeline.to_svg ~np evs in
  check_bool "svg prologue" true
    (String.length svg > 5 && String.sub svg 0 4 = "<svg");
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "has pe lanes" true (contains svg "pe1");
  check_bool "has message arrows" true (contains svg "marker-end");
  let chrome = Timeline.to_chrome_json ~np evs in
  (match Obs.Json.parse chrome with
  | Ok json ->
      check_bool "traceEvents array" true
        (Option.is_some (Obs.Json.member "traceEvents" json))
  | Error msg -> Alcotest.failf "chrome trace unparseable: %s" msg);
  check_bool "network lane named" true (contains chrome "network")

let test_audit_contention_free_conforms () =
  (* Under the paper's model a legal schedule never falls behind the
     static promise, so the audit must come back clean. *)
  List.iter
    (fun (name, g) ->
      let topo = Topology.mesh ~rows:2 ~cols:4 in
      let s = compacted g topo in
      let rec_ = Events.recorder () in
      let _ = Sim.execute ~recorder:rec_ s topo ~iterations:10 in
      let a = Audit.audit s (Events.events rec_) in
      check_bool (name ^ ": conforms") true a.Audit.conforms;
      check (name ^ ": no slips") 0 a.Audit.slipped;
      check (name ^ ": every instance audited")
        (Csdfg.n_nodes (Schedule.dfg s) * 10)
        a.Audit.instances)
    [ ("fig7", Workloads.Examples.fig7); ("fig1b", Workloads.Examples.fig1b) ]

let test_audit_names_blocking_chain () =
  (* The acceptance case: a FIFO run with measured slowdown above 1.0
     must attribute the slip to a named link/message chain. *)
  let g = Workloads.Dsp.correlator ~lags:4 in
  let topo = Topology.linear_array 8 in
  let s = compacted g topo in
  let rec_ = Events.recorder () in
  let stats =
    Sim.execute ~policy:Sim.Fifo_links ~recorder:rec_ s topo ~iterations:40
  in
  check_bool "slowdown above 1" true (Sim.slowdown stats s > 1.0);
  let a = Audit.audit ~k:5 s (Events.events rec_) in
  check_bool "does not conform" true (not a.Audit.conforms);
  check_bool "offenders listed" true (a.Audit.worst <> []);
  check_bool "a chain names a congested link" true
    (List.exists
       (fun (sl : Audit.slip) ->
         List.exists
           (function Audit.Link_contention _ -> true | _ -> false)
           sl.Audit.chain)
       a.Audit.worst);
  check_bool "worst slip reported" true
    (List.for_all (fun (sl : Audit.slip) -> sl.Audit.slip > 0) a.Audit.worst);
  check_bool "link occupancy populated" true
    (List.exists (fun (l : Audit.link_use) -> l.Audit.busy > 0) a.Audit.links);
  (* the printer runs and mentions a link *)
  let text = Fmt.str "%a" (Audit.pp ~label:(Csdfg.label (Schedule.dfg s))) a in
  check_bool "report names a link" true
    (let contains hay needle =
       let nl = String.length needle and hl = String.length hay in
       let rec go i =
         i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
       in
       go 0
     in
     contains text "on link pe")

let prop_fifo_never_beats_free =
  (* Random workloads: serialising links can only delay execution, and
     it never changes what was communicated.  The slowdown comparison is
     on total makespan: the monotone quantity.  (average_period is a
     second-half slope and can legitimately dip under FIFO when the
     contention transient shifts completions into the first half — seed
     8646 on ring:4 measures free 9.0 vs fifo 8.0 while the fifo
     makespan is still larger.) *)
  QCheck.Test.make ~count:40
    ~name:"fifo makespan slowdown >= contention-free's"
    (QCheck.int_range 0 10_000)
    (fun seed ->
      let g = Workloads.Random_gen.generate_connected ~seed () in
      let topo =
        match seed mod 3 with
        | 0 -> Topology.linear_array 4
        | 1 -> Topology.ring 4
        | _ -> Topology.mesh ~rows:2 ~cols:2
      in
      let s = compacted g topo in
      let free = Sim.execute ~policy:Sim.Contention_free s topo ~iterations:12 in
      let fifo = Sim.execute ~policy:Sim.Fifo_links s topo ~iterations:12 in
      if fifo.Sim.makespan < free.Sim.makespan then
        QCheck.Test.fail_reportf "seed %d: fifo makespan %d < free %d" seed
          fifo.Sim.makespan free.Sim.makespan;
      if fifo.Sim.messages <> free.Sim.messages then
        QCheck.Test.fail_reportf "seed %d: message counts differ" seed;
      if fifo.Sim.message_hops <> free.Sim.message_hops then
        QCheck.Test.fail_reportf "seed %d: hop counts differ" seed;
      if free.Sim.max_link_backlog <> 0 then
        QCheck.Test.fail_reportf "seed %d: free policy queued a message" seed;
      float_of_int fifo.Sim.makespan /. float_of_int (max 1 free.Sim.makespan)
      >= 1. -. 1e-9)

let () =
  Alcotest.run "machine"
    [
      ( "analytical-agreement",
        [
          Alcotest.test_case "static bound formula" `Quick
            test_static_bound_formula;
          Alcotest.test_case "contention-free meets bound" `Quick
            test_contention_free_meets_static_bound;
          Alcotest.test_case "sustained period" `Quick
            test_period_matches_schedule_length;
          Alcotest.test_case "all workloads" `Quick test_all_workloads_simulate;
        ] );
      ( "contention",
        [
          Alcotest.test_case "fifo >= free" `Quick test_fifo_never_faster_than_free;
          Alcotest.test_case "saturated hub link" `Quick
            test_fifo_contention_degrades_saturated_link;
        ] );
      ( "wormhole",
        [
          Alcotest.test_case "cost model" `Quick test_wormhole_cost_model;
          Alcotest.test_case "schedules execute" `Quick
            test_wormhole_schedule_executes;
          Alcotest.test_case "fifo not faster" `Quick test_wormhole_fifo_not_faster;
          Alcotest.test_case "with_comm recosting" `Quick test_with_comm_recosting;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "single processor" `Quick
            test_single_processor_no_messages;
          Alcotest.test_case "self loop chain" `Quick test_self_loop_instance_chain;
          Alcotest.test_case "busy time" `Quick test_busy_accounting;
          Alcotest.test_case "message count" `Quick test_message_count_formula;
          Alcotest.test_case "weighted links" `Quick
            test_weighted_topology_execution;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "bad inputs" `Quick test_rejects_bad_inputs;
          Alcotest.test_case "deadlock detection" `Quick
            test_illegal_schedule_deadlocks;
        ] );
      ( "flight-recorder",
        [
          Alcotest.test_case "tallies match stats" `Quick
            test_recorder_tallies_match_stats;
          Alcotest.test_case "recording is observational" `Quick
            test_recording_is_observational;
          Alcotest.test_case "busy array is a copy" `Quick
            test_busy_array_is_a_copy;
          Alcotest.test_case "per-PE utilization" `Quick
            test_per_pe_utilization;
          Alcotest.test_case "stall counters and histograms" `Quick
            test_stall_counters_and_histograms;
          Alcotest.test_case "jsonl export" `Quick
            test_jsonl_export_well_formed;
          Alcotest.test_case "timeline views" `Quick test_timeline_views;
        ] );
      ( "audit",
        [
          Alcotest.test_case "contention-free conforms" `Quick
            test_audit_contention_free_conforms;
          Alcotest.test_case "contended run names its chain" `Quick
            test_audit_names_blocking_chain;
          QCheck_alcotest.to_alcotest ~long:false prop_fifo_never_beats_free;
        ] );
    ]
