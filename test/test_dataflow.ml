(* Unit tests for the CSDFG model, retiming, analysis, iteration bound,
   transformations and text I/O. *)

module Csdfg = Dataflow.Csdfg
module Retiming = Dataflow.Retiming
module G = Digraph.Graph

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fig1b = Workloads.Examples.fig1b

let delays g =
  List.map (fun e -> (Csdfg.label g e.G.src, Csdfg.label g e.G.dst, Csdfg.delay e))
    (Csdfg.edges g)

(* ------------------------------------------------------------------ *)
(* Csdfg construction and accessors                                     *)
(* ------------------------------------------------------------------ *)

let test_fig1b_shape () =
  check "nodes" 6 (Csdfg.n_nodes fig1b);
  check "edges" 10 (Csdfg.n_edges fig1b);
  check "t(B)" 2 (Csdfg.time fig1b (Csdfg.node_of_label fig1b "B"));
  check "t(A)" 1 (Csdfg.time fig1b (Csdfg.node_of_label fig1b "A"));
  check "total time" 8 (Csdfg.total_time fig1b);
  check "max time" 2 (Csdfg.max_time fig1b)

let test_labels_roundtrip () =
  List.iter
    (fun v ->
      check "label -> node -> label" v
        (Csdfg.node_of_label fig1b (Csdfg.label fig1b v)))
    (Csdfg.nodes fig1b)

let test_unknown_label () =
  check_bool "raises Not_found" true
    (match Csdfg.node_of_label fig1b "nope" with
    | exception Not_found -> true
    | _ -> false)

let test_duplicate_label_rejected () =
  check_bool "duplicate rejected" true
    (match
       Csdfg.make ~name:"dup" ~nodes:[ ("A", 1); ("A", 1) ] ~edges:[]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_bad_time_rejected () =
  check_bool "zero time rejected" true
    (match Csdfg.make ~name:"z" ~nodes:[ ("A", 0) ] ~edges:[] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_bad_volume_rejected () =
  check_bool "zero volume rejected" true
    (match
       Csdfg.make ~name:"v" ~nodes:[ ("A", 1); ("B", 1) ]
         ~edges:[ ("A", "B", 0, 0) ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_negative_delay_rejected () =
  check_bool "negative delay rejected" true
    (match
       Csdfg.make ~name:"d" ~nodes:[ ("A", 1); ("B", 1) ]
         ~edges:[ ("A", "B", -1, 1) ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_validate_legal () =
  check_bool "fig1b legal" true (Csdfg.is_legal fig1b)

let test_validate_zero_delay_cycle () =
  let bad =
    Csdfg.make ~name:"bad" ~nodes:[ ("A", 1); ("B", 1) ]
      ~edges:[ ("A", "B", 0, 1); ("B", "A", 0, 1) ]
  in
  match Csdfg.validate bad with
  | Ok () -> Alcotest.fail "zero-delay cycle must be rejected"
  | Error problems ->
      check_bool "reports a cycle" true
        (List.exists
           (function Csdfg.Zero_delay_cycle _ -> true | _ -> false)
           problems)

let test_zero_delay_graph () =
  let dag = Csdfg.zero_delay_graph fig1b in
  check "zero-delay edges" 8 (G.n_edges dag);
  check_bool "acyclic" true (Digraph.Topo.is_dag dag)

let test_io_roundtrip () =
  let text = Dataflow.Io.to_string fig1b in
  match Dataflow.Io.of_string text with
  | Error e -> Alcotest.fail (Dataflow.Io.error_to_string e)
  | Ok g ->
      check "nodes preserved" (Csdfg.n_nodes fig1b) (Csdfg.n_nodes g);
      check "edges preserved" (Csdfg.n_edges fig1b) (Csdfg.n_edges g);
      Alcotest.(check (list (triple string string int)))
        "delays preserved" (delays fig1b) (delays g)

let test_io_comments_and_blanks () =
  let text = "# heading\n\ncsdfg t\nnode A 1  # trailing\nnode B 2\nedge A B 0 1\n" in
  match Dataflow.Io.of_string text with
  | Error e -> Alcotest.fail (Dataflow.Io.error_to_string e)
  | Ok g ->
      check "two nodes" 2 (Csdfg.n_nodes g);
      check "one edge" 1 (Csdfg.n_edges g)

let test_io_errors () =
  let cases =
    [
      ("node A x\n", "bad int");
      ("frob A\n", "unknown directive");
      ("edge A B 0 1\n", "unknown label");
    ]
  in
  List.iter
    (fun (text, what) ->
      match Dataflow.Io.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("parser accepted " ^ what))
    cases

let test_io_error_line_number () =
  match Dataflow.Io.of_string "csdfg t\nnode A one\n" with
  | Error e ->
      Alcotest.(check (option int)) "line 2" (Some 2) e.Dataflow.Io.line;
      check_bool "mentions line 2" true
        (String.length (Dataflow.Io.error_to_string e) >= 6
        && String.sub (Dataflow.Io.error_to_string e) 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "must fail"

(* ------------------------------------------------------------------ *)
(* Retiming                                                             *)
(* ------------------------------------------------------------------ *)

let test_rotation_fig1 () =
  (* Paper Figure 1(b) -> 1(c): rotating {A} moves D->A from 3 to 2 and
     gives each A out-edge one delay. *)
  let a = Csdfg.node_of_label fig1b "A" in
  let g' = Retiming.rotate_set fig1b [ a ] in
  let d s t =
    let e =
      List.find
        (fun e -> Csdfg.label g' e.G.src = s && Csdfg.label g' e.G.dst = t)
        (Csdfg.edges g')
    in
    Csdfg.delay e
  in
  check "D->A" 2 (d "D" "A");
  check "A->B" 1 (d "A" "B");
  check "A->C" 1 (d "A" "C");
  check "A->E" 1 (d "A" "E");
  check "B->D untouched" 0 (d "B" "D");
  check "F->E untouched" 1 (d "F" "E")

let test_rotation_illegal () =
  let b = Csdfg.node_of_label fig1b "B" in
  (* B's incoming edge A->B has no delay: rotating {B} is illegal. *)
  check_bool "cannot rotate B" false (Retiming.can_rotate fig1b [ b ]);
  check_bool "raises" true
    (match Retiming.rotate_set fig1b [ b ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_retiming_preserves_cycle_delay () =
  let a = Csdfg.node_of_label fig1b "A" in
  let g' = Retiming.rotate_set fig1b [ a ] in
  let cycle_delay g cyc =
    Digraph.Cycles.fold_cycle_weight (Csdfg.graph g) cyc ~init:0
      ~f:(fun acc e -> acc + Csdfg.delay e)
  in
  let cycles = Digraph.Cycles.elementary (Csdfg.graph fig1b) in
  check_bool "some cycles" true (cycles <> []);
  List.iter
    (fun cyc ->
      check "cycle delay invariant" (cycle_delay fig1b cyc) (cycle_delay g' cyc))
    cycles

let test_retiming_legality_preserved () =
  let a = Csdfg.node_of_label fig1b "A" in
  check_bool "retimed graph still legal" true
    (Csdfg.is_legal (Retiming.rotate_set fig1b [ a ]))

let test_compose_and_normalize () =
  let r1 = [| 1; 0; 0; 0; 0; 0 |] and r2 = [| 0; 2; 0; 0; 0; 0 |] in
  Alcotest.(check (array int)) "compose" [| 1; 2; 0; 0; 0; 0 |]
    (Retiming.compose r1 r2);
  Alcotest.(check (array int)) "normalize" [| 3; 0; 1 |]
    (Retiming.normalize [| 2; -1; 0 |])

let test_apply_identity () =
  let g' = Retiming.apply fig1b (Retiming.identity fig1b) in
  Alcotest.(check (list (triple string string int)))
    "identity retiming changes nothing" (delays fig1b) (delays g')

let test_clock_period () =
  (* Longest zero-delay path of fig1b: A B B E E F = 6 time units. *)
  check "clock period" 6 (Retiming.clock_period fig1b)

let test_wd_matrices () =
  let w, d = Retiming.wd_matrices fig1b in
  let idx l = Csdfg.node_of_label fig1b l in
  check "W(A,F) min delays" 0 w.(idx "A").(idx "F");
  check "D(A,F) longest zero-delay time" 6 d.(idx "A").(idx "F");
  check "W diag" 0 w.(idx "A").(idx "A");
  check "W(D,A) via feedback" 3 w.(idx "D").(idx "A")

let test_min_period () =
  let period, r = Retiming.min_period fig1b in
  check_bool "achievable <= current" true (period <= Retiming.clock_period fig1b);
  check_bool "witness legal" true (Retiming.is_legal fig1b r);
  check "witness achieves period" period
    (Retiming.clock_period (Retiming.apply fig1b r));
  (* fig1b's iteration bound is 3 (cycle E->F->E): the zero-delay path
     through E and F alone costs 3, so no retiming beats 3. *)
  check_bool "period within known range" true (period >= 3 && period <= 6)

let test_feasible_absurd_period () =
  check_bool "period 1 infeasible for fig1b (t(B) = 2)" true
    (Retiming.feasible fig1b ~period:1 = None)

let test_feasible_current_period () =
  match Retiming.feasible fig1b ~period:(Retiming.clock_period fig1b) with
  | None -> Alcotest.fail "current period is always feasible"
  | Some r -> check_bool "legal witness" true (Retiming.is_legal fig1b r)

(* ------------------------------------------------------------------ *)
(* Analysis                                                             *)
(* ------------------------------------------------------------------ *)

let test_analysis_fig1b () =
  let a = Dataflow.Analysis.compute fig1b in
  let idx l = Csdfg.node_of_label fig1b l in
  check "critical path" 6 a.Dataflow.Analysis.critical_path;
  check "asap A" 1 a.Dataflow.Analysis.asap.(idx "A");
  check "asap B" 2 a.Dataflow.Analysis.asap.(idx "B");
  check "asap E" 4 a.Dataflow.Analysis.asap.(idx "E");
  check "asap F" 6 a.Dataflow.Analysis.asap.(idx "F");
  check "mobility A" 0 (Dataflow.Analysis.mobility a (idx "A"));
  check "mobility B" 0 (Dataflow.Analysis.mobility a (idx "B"));
  (* C can slip to step 3 without stretching the critical path. *)
  check "mobility C" 1 (Dataflow.Analysis.mobility a (idx "C"));
  check "mobility D" 1 (Dataflow.Analysis.mobility a (idx "D"))

let test_analysis_critical_nodes () =
  let a = Dataflow.Analysis.compute fig1b in
  let labels =
    List.map (Csdfg.label fig1b) (Dataflow.Analysis.critical_nodes a)
  in
  Alcotest.(check (list string)) "critical chain" [ "A"; "B"; "E"; "F" ] labels

let test_analysis_rejects_illegal () =
  let bad =
    Csdfg.make ~name:"bad" ~nodes:[ ("A", 1); ("B", 1) ]
      ~edges:[ ("A", "B", 0, 1); ("B", "A", 0, 1) ]
  in
  check_bool "raises" true
    (match Dataflow.Analysis.compute bad with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Iteration bound                                                      *)
(* ------------------------------------------------------------------ *)

let test_iteration_bound_fig1b () =
  (* Cycles: A->B->D->A with T=4, d=3 (4/3); E->F->E with T=3, d=1 (3). *)
  match Dataflow.Iteration_bound.exact fig1b with
  | None -> Alcotest.fail "fig1b is cyclic"
  | Some (t, d) ->
      check_bool "bound = 3" true (t = 3 * d);
      check "ceil" 3 (Option.get (Dataflow.Iteration_bound.exact_ceil fig1b))

let test_iteration_bound_approx_agrees () =
  match Dataflow.Iteration_bound.approx fig1b with
  | None -> Alcotest.fail "cyclic"
  | Some r -> Alcotest.(check (float 1e-5)) "approx" 3.0 r

let test_iteration_bound_acyclic () =
  let dag =
    Csdfg.make ~name:"dag" ~nodes:[ ("A", 1); ("B", 1) ]
      ~edges:[ ("A", "B", 0, 1) ]
  in
  check_bool "acyclic -> None" true (Dataflow.Iteration_bound.exact dag = None)

let test_critical_cycles () =
  let crit = Dataflow.Iteration_bound.critical_cycles fig1b in
  check "one critical cycle" 1 (List.length crit);
  let labels = List.map (Csdfg.label fig1b) (List.hd crit) in
  Alcotest.(check (list string)) "it is E-F" [ "E"; "F" ] labels

(* ------------------------------------------------------------------ *)
(* Transform                                                            *)
(* ------------------------------------------------------------------ *)

let test_slowdown () =
  let g = Dataflow.Transform.slowdown fig1b 3 in
  let d s t =
    let e =
      List.find
        (fun e -> Csdfg.label g e.G.src = s && Csdfg.label g e.G.dst = t)
        (Csdfg.edges g)
    in
    Csdfg.delay e
  in
  check "D->A tripled" 9 (d "D" "A");
  check "F->E tripled" 3 (d "F" "E");
  check "zero stays zero" 0 (d "A" "B");
  check_bool "still legal" true (Csdfg.is_legal g)

let test_slowdown_divides_bound () =
  (* Slow-down by k divides the iteration bound by k. *)
  let g = Dataflow.Transform.slowdown fig1b 3 in
  match (Dataflow.Iteration_bound.exact fig1b, Dataflow.Iteration_bound.exact g) with
  | Some (t0, d0), Some (t1, d1) ->
      check_bool "bound scaled by 1/3" true (t0 * d1 = 3 * t1 * d0)
  | _ -> Alcotest.fail "both cyclic"

let test_slowdown_bad_factor () =
  check_bool "rejects zero" true
    (match Dataflow.Transform.slowdown fig1b 0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_unfold () =
  let g = Dataflow.Transform.unfold fig1b 2 in
  check "nodes doubled" 12 (Csdfg.n_nodes g);
  check "edges doubled" 20 (Csdfg.n_edges g);
  check_bool "legal" true (Csdfg.is_legal g);
  (* Total delay is preserved by unfolding. *)
  let total g = List.fold_left (fun acc e -> acc + Csdfg.delay e) 0 (Csdfg.edges g) in
  check "total delay preserved" (total fig1b) (total g)

let test_unfold_one_is_identity () =
  let g = Dataflow.Transform.unfold fig1b 1 in
  check "same node count" (Csdfg.n_nodes fig1b) (Csdfg.n_nodes g);
  check "same edge count" (Csdfg.n_edges fig1b) (Csdfg.n_edges g)

let test_scale_volumes_times () =
  let gv = Dataflow.Transform.scale_volumes fig1b 4 in
  let e0 = List.hd (Csdfg.edges gv) in
  check "volume scaled" (4 * Csdfg.volume (List.hd (Csdfg.edges fig1b)))
    (Csdfg.volume e0);
  let gt = Dataflow.Transform.scale_times fig1b 2 in
  check "time scaled" 4 (Csdfg.time gt (Csdfg.node_of_label gt "B"))

let test_disjoint_union () =
  let u = Dataflow.Transform.disjoint_union fig1b fig1b in
  check "nodes add" 12 (Csdfg.n_nodes u);
  check "edges add" 20 (Csdfg.n_edges u);
  check_bool "legal" true (Csdfg.is_legal u)

let test_reverse_involution () =
  let r2 = Dataflow.Transform.reverse (Dataflow.Transform.reverse fig1b) in
  Alcotest.(check (list (triple string string int)))
    "double reverse" (delays fig1b) (delays r2)

(* ------------------------------------------------------------------ *)
(* Odds and ends: printers, guards, exact unfold delays                 *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_pp_outputs () =
  let s = Fmt.str "%a" Csdfg.pp fig1b in
  check_bool "lists nodes" true (contains s "node B t=2");
  check_bool "lists edges" true (contains s "D -> A d=3 c=3");
  let stats = Fmt.str "%a" Csdfg.pp_stats fig1b in
  check_bool "stats line" true (contains stats "|V|=6 |E|=10");
  let a = Dataflow.Analysis.compute fig1b in
  let txt = Fmt.str "%a" (Dataflow.Analysis.pp fig1b) a in
  check_bool "analysis mentions mobility" true (contains txt "mobility")

let test_illegal_edges_listed () =
  let r = Array.make 6 0 in
  r.(Csdfg.node_of_label fig1b "B") <- 1;
  (* B's zero-delay in-edge A->B would go negative *)
  check "one offending edge" 1
    (List.length (Retiming.illegal_edges fig1b r));
  check_bool "flagged as illegal" false (Retiming.is_legal fig1b r)

let test_unfold_exact_delays () =
  (* fig1b unfolded by 2: D -> A with d=3 becomes D#0 -> A#1 (d=1) and
     D#1 -> A#0 (d=2); F -> E with d=1 becomes F#0 -> E#1 (d=0) and
     F#1 -> E#0 (d=1). *)
  let g = Dataflow.Transform.unfold fig1b 2 in
  let d s t =
    let e =
      List.find
        (fun e ->
          Csdfg.label g e.G.src = s && Csdfg.label g e.G.dst = t)
        (Csdfg.edges g)
    in
    Csdfg.delay e
  in
  check "D#0 -> A#1" 1 (d "D#0" "A#1");
  check "D#1 -> A#0" 2 (d "D#1" "A#0");
  check "F#0 -> E#1" 0 (d "F#0" "E#1");
  check "F#1 -> E#0" 1 (d "F#1" "E#0");
  check "A#0 -> B#0 stays intra" 0 (d "A#0" "B#0")

let test_transform_guards () =
  List.iter
    (fun (what, f) ->
      check_bool what true
        (match f () with exception Invalid_argument _ -> true | _ -> false))
    [
      ("unfold 0", fun () -> ignore (Dataflow.Transform.unfold fig1b 0));
      ("scale_volumes 0", fun () -> ignore (Dataflow.Transform.scale_volumes fig1b 0));
      ("scale_times -1", fun () -> ignore (Dataflow.Transform.scale_times fig1b (-1)));
    ]

let test_dot_export_mentions_delays () =
  let dot = Dataflow.Dot_export.to_dot fig1b in
  check_bool "delay bars" true (contains dot "|||");
  check_bool "volumes" true (contains dot "c=3");
  check_bool "times in labels" true (contains dot "B (2)")

let () =
  Alcotest.run "dataflow"
    [
      ( "csdfg",
        [
          Alcotest.test_case "fig1b shape" `Quick test_fig1b_shape;
          Alcotest.test_case "label roundtrip" `Quick test_labels_roundtrip;
          Alcotest.test_case "unknown label" `Quick test_unknown_label;
          Alcotest.test_case "duplicate label" `Quick test_duplicate_label_rejected;
          Alcotest.test_case "bad time" `Quick test_bad_time_rejected;
          Alcotest.test_case "bad volume" `Quick test_bad_volume_rejected;
          Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
          Alcotest.test_case "validate legal" `Quick test_validate_legal;
          Alcotest.test_case "zero-delay cycle" `Quick test_validate_zero_delay_cycle;
          Alcotest.test_case "zero-delay graph" `Quick test_zero_delay_graph;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "comments/blanks" `Quick test_io_comments_and_blanks;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "error line numbers" `Quick test_io_error_line_number;
        ] );
      ( "retiming",
        [
          Alcotest.test_case "paper rotation" `Quick test_rotation_fig1;
          Alcotest.test_case "illegal rotation" `Quick test_rotation_illegal;
          Alcotest.test_case "cycle delay invariant" `Quick
            test_retiming_preserves_cycle_delay;
          Alcotest.test_case "legality preserved" `Quick
            test_retiming_legality_preserved;
          Alcotest.test_case "compose/normalize" `Quick test_compose_and_normalize;
          Alcotest.test_case "identity" `Quick test_apply_identity;
          Alcotest.test_case "clock period" `Quick test_clock_period;
          Alcotest.test_case "W/D matrices" `Quick test_wd_matrices;
          Alcotest.test_case "min period" `Quick test_min_period;
          Alcotest.test_case "infeasible period" `Quick test_feasible_absurd_period;
          Alcotest.test_case "current period feasible" `Quick
            test_feasible_current_period;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "fig1b asap/alap" `Quick test_analysis_fig1b;
          Alcotest.test_case "critical nodes" `Quick test_analysis_critical_nodes;
          Alcotest.test_case "illegal input" `Quick test_analysis_rejects_illegal;
        ] );
      ( "iteration-bound",
        [
          Alcotest.test_case "fig1b" `Quick test_iteration_bound_fig1b;
          Alcotest.test_case "approx agrees" `Quick test_iteration_bound_approx_agrees;
          Alcotest.test_case "acyclic" `Quick test_iteration_bound_acyclic;
          Alcotest.test_case "critical cycles" `Quick test_critical_cycles;
        ] );
      ( "transform",
        [
          Alcotest.test_case "slowdown" `Quick test_slowdown;
          Alcotest.test_case "slowdown scales bound" `Quick
            test_slowdown_divides_bound;
          Alcotest.test_case "slowdown bad factor" `Quick test_slowdown_bad_factor;
          Alcotest.test_case "unfold" `Quick test_unfold;
          Alcotest.test_case "unfold 1" `Quick test_unfold_one_is_identity;
          Alcotest.test_case "scale volumes/times" `Quick test_scale_volumes_times;
          Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
          Alcotest.test_case "reverse involution" `Quick test_reverse_involution;
        ] );
      ( "misc",
        [
          Alcotest.test_case "printers" `Quick test_pp_outputs;
          Alcotest.test_case "illegal edges" `Quick test_illegal_edges_listed;
          Alcotest.test_case "unfold exact delays" `Quick test_unfold_exact_delays;
          Alcotest.test_case "transform guards" `Quick test_transform_guards;
          Alcotest.test_case "dot export" `Quick test_dot_export_mentions_delays;
        ] );
    ]
