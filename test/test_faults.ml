(* Tests for the fault-injection layer: scenario DSL, deterministic
   loss draws, fault-free byte-identity, fixed-seed replay, degraded-mode
   recovery, and the search-time budgets that ride along. *)

module Schedule = Cyclo.Schedule
module Sim = Machine.Simulator
module Faults = Machine.Faults
module Events = Machine.Events
module Audit = Machine.Audit

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compacted g topo =
  (Cyclo.Compaction.run_on g topo).Cyclo.Compaction.best

let jsonl_of_run ?faults s topo ~iterations =
  let r = Events.recorder () in
  let stats = Sim.execute ~recorder:r ?faults s topo ~iterations in
  (stats, Events.to_jsonl (Events.events r))

(* {2 Scenario DSL} *)

let test_dsl_round_trip () =
  let s =
    Faults.scenario ~max_retries:7 ~backoff_base:2 ~detect_delay:3
      ~name:"round-trip"
      [
        Faults.Pe_fail_stop { pe = 2; at = 40 };
        Faults.Link_down { a = 0; b = 1; from_t = 10; until = Some 30 };
        Faults.Link_down { a = 1; b = 5; from_t = 12; until = None };
        Faults.Link_lossy { a = 0; b = 4; loss = 0.25 };
      ]
  in
  match Faults.of_string (Faults.to_string s) with
  | Error e -> Alcotest.fail (Faults.error_to_string e)
  | Ok s' ->
      Alcotest.(check string)
        "round-trips" (Faults.to_string s) (Faults.to_string s');
      check "retries" s.Faults.max_retries s'.Faults.max_retries;
      check "detect" s.Faults.detect_delay s'.Faults.detect_delay

let test_dsl_errors_carry_line_numbers () =
  (match Faults.of_string "scenario x\nfail-pe 1 at 5\nfail-pe nope\n" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> check "line of bad fault" 3 e.Faults.line);
  match Faults.of_string "scenario x\nlink-lossy 1 2 1.5\n" with
  | Ok _ -> Alcotest.fail "loss must be < 1"
  | Error e -> check "line of bad loss" 2 e.Faults.line

let test_validate_rejects_out_of_range () =
  let topo = Topology.mesh ~rows:2 ~cols:2 in
  let bad = Faults.scenario ~name:"bad" [ Faults.Pe_fail_stop { pe = 9; at = 1 } ] in
  check_bool "pe out of range" true
    (Result.is_error (Faults.validate bad topo));
  let ok =
    Faults.scenario ~name:"ok"
      [ Faults.Link_down { a = 0; b = 3; from_t = 0; until = None } ]
  in
  (* absent links are inert but in-range endpoints are accepted *)
  check_bool "absent link accepted" true (Result.is_ok (Faults.validate ok topo))

(* {2 Deterministic loss draws} *)

let test_lost_is_deterministic () =
  for msg = 0 to 50 do
    for xmit = 1 to 4 do
      check_bool "same draw twice" true
        (Faults.lost ~seed:7 ~msg ~xmit 0.5
        = Faults.lost ~seed:7 ~msg ~xmit 0.5)
    done
  done;
  check_bool "p = 0 never loses" false (Faults.lost ~seed:1 ~msg:3 ~xmit:1 0.);
  (* the draws behave like a fair uniform source *)
  let n = 20_000 in
  let hits = ref 0 in
  for msg = 0 to n - 1 do
    if Faults.lost ~seed:42 ~msg ~xmit:1 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  check_bool "empirical loss rate near 0.3" true (abs_float (freq -. 0.3) < 0.02)

(* {2 Fault-free behaviour is untouched} *)

let test_empty_scenario_is_byte_identical () =
  (* Arming an empty scenario forces the per-hop fault stepping, which
     must reproduce the clean run exactly: same stats, same events. *)
  let g = Workloads.Examples.fig7 in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let s = compacted g topo in
  let clean, clean_jsonl = jsonl_of_run s topo ~iterations:40 in
  let armed = Faults.arm ~seed:1 (Faults.scenario ~name:"empty" []) in
  let faulty, faulty_jsonl = jsonl_of_run ~faults:armed s topo ~iterations:40 in
  check "same makespan" clean.Sim.makespan faulty.Sim.makespan;
  check "same messages" clean.Sim.messages faulty.Sim.messages;
  check "same hops" clean.Sim.message_hops faulty.Sim.message_hops;
  Alcotest.(check (float 1e-9))
    "same period" clean.Sim.average_period faulty.Sim.average_period;
  (* The fault path interleaves same-time events through its retry
     queue, so intra-timestamp ordering — and with it the send-order
     message ids — may permute.  Modulo those ids, the streams must
     contain exactly the same events at the same times. *)
  let strip_msg_id s =
    let b = Buffer.create (String.length s) in
    let key = "\"msg\":" in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if !i + 6 <= n && String.sub s !i 6 = key then begin
        Buffer.add_string b key;
        i := !i + 6;
        while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
          incr i
        done
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.contents b
  in
  let lines s =
    List.sort compare (List.map strip_msg_id (String.split_on_char '\n' s))
  in
  Alcotest.(check (list string))
    "same events" (lines clean_jsonl) (lines faulty_jsonl);
  check_bool "clean run reports no faults" true (clean.Sim.faults = None)

let test_clean_run_replays_identically () =
  let g = Workloads.Examples.fig7 in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let s = compacted g topo in
  let _, a = jsonl_of_run s topo ~iterations:40 in
  let _, b = jsonl_of_run s topo ~iterations:40 in
  Alcotest.(check string) "byte-identical" a b

(* {2 Fixed-seed replay} *)

let lossy_scenario =
  Faults.scenario ~max_retries:3 ~backoff_base:2 ~name:"lossy"
    [ Faults.Link_lossy { a = 0; b = 1; loss = 0.4 };
      Faults.Link_lossy { a = 1; b = 2; loss = 0.4 } ]

let test_fixed_seed_replays_identically () =
  let g = Workloads.Examples.fig7 in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let s = compacted g topo in
  let run seed =
    jsonl_of_run ~faults:(Faults.arm ~seed lossy_scenario) s topo
      ~iterations:40
  in
  let _, a1 = run 11 in
  let _, a2 = run 11 in
  Alcotest.(check string) "same seed, same bytes" a1 a2;
  let _, b = run 12 in
  check_bool "different seed, different stream" true (a1 <> b)

let test_lossy_links_retry_and_drop () =
  let g = Workloads.Examples.fig7 in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let s = compacted g topo in
  let stats, _ =
    jsonl_of_run ~faults:(Faults.arm ~seed:11 lossy_scenario) s topo
      ~iterations:40
  in
  match stats.Sim.faults with
  | None -> Alcotest.fail "fault run must carry a report"
  | Some r ->
      check_bool "some transmissions were retried" true (r.Faults.retries > 0);
      check_bool "no permanent fault" true (r.Faults.fault_time = None);
      check "nothing to recover from" 0 r.Faults.recovery_latency

(* {2 Transient link outage} *)

let test_transient_window_delays_but_recovers () =
  let g = Workloads.Examples.fig7 in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let s = compacted g topo in
  let clean = Sim.execute s topo ~iterations:40 in
  let sc =
    Faults.scenario ~name:"blip"
      [ Faults.Link_down { a = 0; b = 1; from_t = 5; until = Some 60 } ]
  in
  let stats = Sim.execute ~faults:(Faults.arm sc) s topo ~iterations:40 in
  check_bool "outage cannot speed the run up" true
    (stats.Sim.makespan >= clean.Sim.makespan);
  match stats.Sim.faults with
  | None -> Alcotest.fail "fault run must carry a report"
  | Some r ->
      check_bool "transient is not permanent" true (r.Faults.fault_time = None);
      check "no drops without loss" 0 r.Faults.drops;
      check_bool "verdict is not a recovery" true
        (match Audit.degradation r with
        | Audit.Unharmed | Audit.Lossy _ -> true
        | Audit.Recovered _ | Audit.Unrecoverable _ -> false)

(* {2 Fail-stop recovery} *)

let fail_stop_scenario ~pe ~at =
  Faults.scenario ~detect_delay:2 ~name:"fail-stop"
    [ Faults.Pe_fail_stop { pe; at } ]

let test_fail_stop_recovers_on_fig7 () =
  let g = Workloads.Examples.fig7 in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let s = compacted g topo in
  let clean = Sim.execute s topo ~iterations:40 in
  let stats =
    Sim.execute
      ~faults:(Faults.arm ~seed:1 (fail_stop_scenario ~pe:2 ~at:40))
      s topo ~iterations:40
  in
  match stats.Sim.faults with
  | None -> Alcotest.fail "fault run must carry a report"
  | Some r ->
      Alcotest.(check (list int)) "the victim" [ 2 ] r.Faults.failed_pes;
      check_bool "fault time recorded" true (r.Faults.fault_time = Some 40);
      check_bool "recovery took time" true (r.Faults.recovery_latency > 0);
      check_bool "replan succeeded" true (r.Faults.replan_error = None);
      check "all iterations accounted" 40
        (r.Faults.completed_iterations + r.Faults.replayed_iterations);
      check_bool "degraded period >= fault-free period" true
        (r.Faults.post_fault_period >= clean.Sim.average_period -. 1e-9);
      check_bool "verdict acknowledges the fault" true
        (match Audit.degradation r with
        | Audit.Recovered _ | Audit.Lossy _ -> true
        | Audit.Unharmed | Audit.Unrecoverable _ -> false)

let test_fail_stop_replan_is_validator_clean () =
  List.iter
    (fun (name, g) ->
      let topo = Topology.mesh ~rows:2 ~cols:4 in
      let s = compacted g topo in
      for pe = 0 to 7 do
        match
          Cyclo.Degrade.replan s topo ~failed_pes:[ pe ] ~failed_links:[]
        with
        | Error e -> Alcotest.fail (Printf.sprintf "%s pe%d: %s" name pe e)
        | Ok plan ->
            check_bool
              (Printf.sprintf "%s pe%d legal" name pe)
              true
              (Result.is_ok (Cyclo.Validator.check plan.Cyclo.Degrade.schedule));
            check_bool
              (Printf.sprintf "%s pe%d routable" name pe)
              true
              (Result.is_ok
                 (Cyclo.Validator.check_topology plan.Cyclo.Degrade.schedule
                    plan.Cyclo.Degrade.topology))
      done)
    [
      ("fig7", Workloads.Examples.fig7);
      ("correlator4", Workloads.Dsp.correlator ~lags:4);
    ]

(* Any single fail-stop, at any time inside the run, must leave a
   validator-clean degraded schedule whose measured period is no better
   than the fault-free one (fewer processors cannot speed it up). *)
let prop_single_fail_stop_recovers =
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let cases =
    [
      ("fig7", Workloads.Examples.fig7);
      ("correlator4", Workloads.Dsp.correlator ~lags:4);
    ]
    |> List.map (fun (name, g) ->
           let s = compacted g topo in
           let clean = Sim.execute s topo ~iterations:30 in
           (name, s, clean))
  in
  QCheck.Test.make ~count:60 ~name:"single fail-stop recovers cleanly"
    QCheck.(triple (int_range 0 7) (int_range 1 120) (int_bound 1))
    (fun (pe, at, which) ->
      let _, s, clean = List.nth cases (which mod List.length cases) in
      let stats =
        Sim.execute
          ~faults:(Faults.arm ~seed:3 (fail_stop_scenario ~pe ~at))
          s topo ~iterations:30
      in
      match stats.Sim.faults with
      | None -> false
      | Some r ->
          r.Faults.replan_error = None
          && r.Faults.completed_iterations + r.Faults.replayed_iterations = 30
          && (r.Faults.replayed_iterations = 0
             || r.Faults.post_fault_period >= clean.Sim.average_period -. 1e-9))

(* {2 Validator.check_topology} *)

let test_check_topology_flags_dead_processor () =
  let g = Workloads.Examples.fig7 in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let s = compacted g topo in
  check_bool "clean machine passes" true
    (Result.is_ok (Cyclo.Validator.check_topology s topo));
  let alive = Array.make 8 true in
  alive.(0) <- false;
  check_bool "killing a used processor fails" true
    (Result.is_error (Cyclo.Validator.check_topology ~alive s topo))

(* {2 Search-time budgets} *)

let test_exhaustive_budget_carries_best_so_far () =
  let g = Workloads.Examples.fig7 in
  let comm = Cyclo.Comm.of_topology (Topology.mesh ~rows:2 ~cols:4) in
  (match Cyclo.Exhaustive.solve ~max_states:2_000 g comm with
  | Cyclo.Exhaustive.Optimal _ -> Alcotest.fail "2000 states cannot solve fig7"
  | Cyclo.Exhaustive.Gave_up None -> Alcotest.fail "must carry best-so-far"
  | Cyclo.Exhaustive.Gave_up (Some s) ->
      check_bool "carried schedule is legal" true
        (Result.is_ok (Cyclo.Validator.check s)));
  match Cyclo.Exhaustive.solve ~time_budget:0. g comm with
  | Cyclo.Exhaustive.Optimal _ -> Alcotest.fail "zero budget cannot solve fig7"
  | Cyclo.Exhaustive.Gave_up best ->
      check_bool "timeout also carries best-so-far" true (best <> None)

let test_autotune_budget_reports_exhaustion () =
  let g = Workloads.Examples.fig7 in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let full = Cyclo.Autotune.run_on ~parallel:false g topo in
  check_bool "no budget: not exhausted" false full.Cyclo.Autotune.exhausted;
  check "no budget: all configurations" 4
    (List.length full.Cyclo.Autotune.table);
  let cut = Cyclo.Autotune.run_on ~time_budget:0. g topo in
  check_bool "zero budget: exhausted" true cut.Cyclo.Autotune.exhausted;
  check "zero budget: first configuration only" 1
    (List.length cut.Cyclo.Autotune.table);
  check_bool "still returns a legal best" true
    (Result.is_ok (Cyclo.Validator.check cut.Cyclo.Autotune.best))

let () =
  Alcotest.run "faults"
    [
      ( "dsl",
        [
          Alcotest.test_case "round trip" `Quick test_dsl_round_trip;
          Alcotest.test_case "errors carry line numbers" `Quick
            test_dsl_errors_carry_line_numbers;
          Alcotest.test_case "validate ranges" `Quick
            test_validate_rejects_out_of_range;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "loss draws" `Quick test_lost_is_deterministic;
          Alcotest.test_case "empty scenario byte-identical" `Quick
            test_empty_scenario_is_byte_identical;
          Alcotest.test_case "clean replay" `Quick
            test_clean_run_replays_identically;
          Alcotest.test_case "fixed-seed replay" `Quick
            test_fixed_seed_replays_identically;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "lossy retries" `Quick
            test_lossy_links_retry_and_drop;
          Alcotest.test_case "transient window" `Quick
            test_transient_window_delays_but_recovers;
          Alcotest.test_case "fail-stop recovers" `Quick
            test_fail_stop_recovers_on_fig7;
          Alcotest.test_case "replan validator-clean" `Quick
            test_fail_stop_replan_is_validator_clean;
          QCheck_alcotest.to_alcotest prop_single_fail_stop_recovers;
        ] );
      ( "topology-check",
        [
          Alcotest.test_case "dead processor" `Quick
            test_check_topology_flags_dead_processor;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "exhaustive best-so-far" `Quick
            test_exhaustive_budget_carries_best_so_far;
          Alcotest.test_case "autotune exhausted flag" `Quick
            test_autotune_budget_reports_exhaustion;
        ] );
    ]
