(* Unit and property tests for the digraph substrate. *)

module G = Digraph.Graph

let edge src dst label = { G.src; dst; label }

(* A diamond: 0 -> 1 -> 3, 0 -> 2 -> 3. *)
let diamond () =
  G.create ~n:4 [ edge 0 1 "a"; edge 0 2 "b"; edge 1 3 "c"; edge 2 3 "d" ]

(* Two strongly connected components: {0,1,2} and {3,4}, plus a bridge. *)
let two_sccs () =
  G.create ~n:5
    [
      edge 0 1 (); edge 1 2 (); edge 2 0 ();
      edge 2 3 ();
      edge 3 4 (); edge 4 3 ();
    ]

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_list_int = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Graph                                                                *)
(* ------------------------------------------------------------------ *)

let test_empty () =
  let g : unit G.t = G.empty 3 in
  check "nodes" 3 (G.n_nodes g);
  check "edges" 0 (G.n_edges g);
  check_list_int "node list" [ 0; 1; 2 ] (G.nodes g)

let test_empty_zero () =
  let g : unit G.t = G.empty 0 in
  check "no nodes" 0 (G.n_nodes g);
  check_list_int "empty node list" [] (G.nodes g)

let test_empty_negative () =
  Alcotest.check_raises "negative size" (Invalid_argument
    "Digraph.Graph.empty: negative node count") (fun () ->
      ignore (G.empty (-1)))

let test_add_edge_out_of_range () =
  let g = G.empty 2 in
  Alcotest.check_raises "bad src"
    (Invalid_argument "Digraph.Graph.add_edge: node 5 out of range [0..1]")
    (fun () -> ignore (G.add_edge g ~src:5 ~dst:0 ()))

let test_succ_pred () =
  let g = diamond () in
  check "succ 0" 2 (List.length (G.succ g 0));
  check "pred 3" 2 (List.length (G.pred g 3));
  check_list_int "succ_nodes 0" [ 1; 2 ] (G.succ_nodes g 0);
  check_list_int "pred_nodes 3" [ 1; 2 ] (G.pred_nodes g 3);
  check "out_degree" 2 (G.out_degree g 0);
  check "in_degree" 0 (G.in_degree g 0)

let test_insertion_order () =
  let g = diamond () in
  let labels = List.map (fun e -> e.G.label) (G.edges g) in
  Alcotest.(check (list string)) "insertion order" [ "a"; "b"; "c"; "d" ] labels

let test_multigraph () =
  let g = G.create ~n:2 [ edge 0 1 "x"; edge 0 1 "y" ] in
  check "two parallel edges" 2 (List.length (G.find_edges g ~src:0 ~dst:1));
  check_bool "mem" true (G.mem_edge g ~src:0 ~dst:1);
  check_bool "not mem" false (G.mem_edge g ~src:1 ~dst:0)

let test_map_labels () =
  let g = diamond () in
  let g' = G.map_labels (fun e -> String.uppercase_ascii e.G.label) g in
  let labels = List.map (fun e -> e.G.label) (G.edges g') in
  Alcotest.(check (list string)) "mapped" [ "A"; "B"; "C"; "D" ] labels

let test_filter_edges () =
  let g = diamond () in
  let g' = G.filter_edges (fun e -> e.G.src = 0) g in
  check "kept" 2 (G.n_edges g');
  check "same nodes" 4 (G.n_nodes g')

let test_transpose () =
  let g = diamond () in
  let t = G.transpose g in
  check_list_int "succ of 3 in transpose" [ 1; 2 ] (G.succ_nodes t 3);
  check "edge count preserved" (G.n_edges g) (G.n_edges t);
  check_bool "double transpose equals original" true
    (G.equal String.equal g (G.transpose t))

let test_self_loops () =
  let g = G.create ~n:2 [ edge 0 0 (); edge 0 1 () ] in
  check "one self loop" 1 (List.length (G.self_loops g))

let test_equal () =
  let a = diamond () in
  let b =
    G.create ~n:4 [ edge 1 3 "c"; edge 0 1 "a"; edge 2 3 "d"; edge 0 2 "b" ]
  in
  check_bool "equal up to order" true (G.equal String.equal a b);
  let c = G.create ~n:4 [ edge 0 1 "a" ] in
  check_bool "different edge counts" false (G.equal String.equal a c)

(* ------------------------------------------------------------------ *)
(* Traverse                                                             *)
(* ------------------------------------------------------------------ *)

let test_dfs () =
  let g = diamond () in
  check_list_int "dfs from 0" [ 0; 1; 3; 2 ] (Digraph.Traverse.dfs_order g 0)

let test_bfs_levels () =
  let g = diamond () in
  let lv = Digraph.Traverse.bfs_levels g 0 in
  Alcotest.(check (array int)) "levels" [| 0; 1; 1; 2 |] lv

let test_bfs_unreachable () =
  let g = G.create ~n:3 [ edge 0 1 () ] in
  let lv = Digraph.Traverse.bfs_levels g 0 in
  check "unreachable marked" (-1) lv.(2)

let test_reaches () =
  let g = two_sccs () in
  check_bool "0 reaches 4" true (Digraph.Traverse.reaches g ~src:0 ~dst:4);
  check_bool "4 does not reach 0" false (Digraph.Traverse.reaches g ~src:4 ~dst:0)

let test_roots_sinks () =
  let g = diamond () in
  check_list_int "roots" [ 0 ] (Digraph.Traverse.roots g);
  check_list_int "sinks" [ 3 ] (Digraph.Traverse.sinks g)

let test_postorder_covers_all () =
  let g = two_sccs () in
  check "postorder covers every node" 5
    (List.length (Digraph.Traverse.postorder g))

(* ------------------------------------------------------------------ *)
(* Topo                                                                 *)
(* ------------------------------------------------------------------ *)

let test_topo_sort () =
  let g = diamond () in
  match Digraph.Topo.sort g with
  | None -> Alcotest.fail "diamond is a DAG"
  | Some order ->
      check_list_int "deterministic order" [ 0; 1; 2; 3 ] order

let test_topo_cyclic () =
  let g = G.create ~n:2 [ edge 0 1 (); edge 1 0 () ] in
  Alcotest.(check bool) "cycle detected" true (Digraph.Topo.sort g = None);
  check_bool "is_dag false" false (Digraph.Topo.is_dag g)

let test_topo_respects_edges () =
  let g = two_sccs () in
  check_bool "cyclic graph has no order" true (Digraph.Topo.sort g = None)

let test_layers () =
  let g = diamond () in
  match Digraph.Topo.layers g with
  | None -> Alcotest.fail "diamond is a DAG"
  | Some layers ->
      Alcotest.(check (list (list int))) "asap layers" [ [ 0 ]; [ 1; 2 ]; [ 3 ] ]
        layers

let test_longest_path () =
  let g = diamond () in
  check "unit weights" 3 (Digraph.Topo.longest_path_nodes g ~weight:(fun _ -> 1));
  check "weighted" 6
    (Digraph.Topo.longest_path_nodes g ~weight:(fun v -> if v = 2 then 4 else 1))

let test_longest_path_empty () =
  check "empty graph" 0
    (Digraph.Topo.longest_path_nodes (G.empty 0) ~weight:(fun _ -> 1))

(* ------------------------------------------------------------------ *)
(* Scc                                                                  *)
(* ------------------------------------------------------------------ *)

let test_scc_two_components () =
  let g = two_sccs () in
  let comps = Digraph.Scc.components g in
  Alcotest.(check (list (list int))) "components in reverse topo order"
    [ [ 3; 4 ]; [ 0; 1; 2 ] ]
    comps

let test_scc_dag () =
  let g = diamond () in
  check "all singletons" 4 (List.length (Digraph.Scc.components g));
  check "no nontrivial" 0 (List.length (Digraph.Scc.nontrivial g))

let test_scc_self_loop_nontrivial () =
  let g = G.create ~n:2 [ edge 0 0 () ] in
  Alcotest.(check (list (list int))) "self loop is a cycle" [ [ 0 ] ]
    (Digraph.Scc.nontrivial g)

let test_strongly_connected () =
  let ring = G.create ~n:3 [ edge 0 1 (); edge 1 2 (); edge 2 0 () ] in
  check_bool "ring strongly connected" true
    (Digraph.Scc.is_strongly_connected ring);
  check_bool "diamond not" false
    (Digraph.Scc.is_strongly_connected (G.map_labels (fun _ -> ()) (diamond ())))

let test_condensation () =
  let g = two_sccs () in
  let dag = Digraph.Scc.condensation g in
  check "two meta nodes" 2 (G.n_nodes dag);
  check "one bridge" 1 (G.n_edges dag);
  check_bool "condensation is a DAG" true (Digraph.Topo.is_dag dag)

let test_component_of () =
  let g = two_sccs () in
  let owner = Digraph.Scc.component_of g in
  check_bool "0,1,2 together" true
    (owner.(0) = owner.(1) && owner.(1) = owner.(2));
  check_bool "3,4 together" true (owner.(3) = owner.(4));
  check_bool "separate" true (owner.(0) <> owner.(3))

(* ------------------------------------------------------------------ *)
(* Paths                                                                *)
(* ------------------------------------------------------------------ *)

let weighted () =
  G.create ~n:5
    [
      edge 0 1 4; edge 0 2 1; edge 2 1 2; edge 1 3 1; edge 2 3 5; edge 3 4 3;
    ]

let test_dijkstra () =
  let d = Digraph.Paths.dijkstra (weighted ()) ~weight:(fun e -> e.G.label) ~src:0 in
  Alcotest.(check (array int)) "distances" [| 0; 3; 1; 4; 7 |] d

let test_dijkstra_unreachable () =
  let g = G.create ~n:3 [ edge 0 1 1 ] in
  let d = Digraph.Paths.dijkstra g ~weight:(fun e -> e.G.label) ~src:0 in
  check "unreachable" Digraph.Paths.unreachable d.(2)

let test_dijkstra_negative_rejected () =
  let g = G.create ~n:2 [ edge 0 1 (-1) ] in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Digraph.Paths.dijkstra: negative edge weight") (fun () ->
      ignore (Digraph.Paths.dijkstra g ~weight:(fun e -> e.G.label) ~src:0))

let test_dijkstra_path () =
  let dist, parent =
    Digraph.Paths.dijkstra_tree (weighted ()) ~weight:(fun e -> e.G.label) ~src:0
  in
  (match Digraph.Paths.path_to ~dist ~parent 4 with
  | Some p -> check_list_int "path 0->4" [ 0; 2; 1; 3; 4 ] p
  | None -> Alcotest.fail "4 is reachable");
  check_bool "unreachable path is None" true
    (Digraph.Paths.path_to ~dist ~parent 99 = None)

let test_bellman_ford_matches_dijkstra () =
  let g = weighted () in
  let w e = e.G.label in
  match Digraph.Paths.bellman_ford g ~weight:w ~src:0 with
  | None -> Alcotest.fail "no negative cycle here"
  | Some d ->
      Alcotest.(check (array int)) "agrees with dijkstra"
        (Digraph.Paths.dijkstra g ~weight:w ~src:0)
        d

let test_bellman_ford_negative_edge () =
  let g = G.create ~n:3 [ edge 0 1 5; edge 1 2 (-3) ] in
  match Digraph.Paths.bellman_ford g ~weight:(fun e -> e.G.label) ~src:0 with
  | None -> Alcotest.fail "no negative cycle"
  | Some d -> check "negative edge ok" 2 d.(2)

let test_negative_cycle_detected () =
  let g = G.create ~n:2 [ edge 0 1 1; edge 1 0 (-2) ] in
  check_bool "detected" true
    (Digraph.Paths.has_negative_cycle g ~weight:(fun e -> e.G.label));
  check_bool "bellman_ford None" true
    (Digraph.Paths.bellman_ford g ~weight:(fun e -> e.G.label) ~src:0 = None)

let test_feasible_potentials () =
  let g = G.create ~n:3 [ edge 0 1 2; edge 1 2 (-1); edge 2 0 0 ] in
  match Digraph.Paths.feasible_potentials g ~weight:(fun e -> e.G.label) with
  | None -> Alcotest.fail "system is feasible"
  | Some p ->
      G.iter_edges
        (fun e ->
          check_bool "constraint satisfied" true
            (p.(e.G.dst) - p.(e.G.src) <= e.G.label))
        g

let test_floyd_warshall () =
  let g = weighted () in
  let d = Digraph.Paths.floyd_warshall g ~weight:(fun e -> e.G.label) in
  check "0->4" 7 d.(0).(4);
  check "diag" 0 d.(2).(2);
  check "unreachable" Digraph.Paths.unreachable d.(4).(0)

let test_shortest_hops () =
  let g = diamond () in
  let d = Digraph.Paths.shortest_hops g ~src:0 in
  Alcotest.(check (array int)) "hops" [| 0; 1; 1; 2 |] d

(* ------------------------------------------------------------------ *)
(* Cycles                                                               *)
(* ------------------------------------------------------------------ *)

let test_cycles_dag () =
  check "no cycles in a DAG" 0
    (List.length (Digraph.Cycles.elementary (diamond ())));
  check_bool "has_cycle false" false (Digraph.Cycles.has_cycle (diamond ()))

let test_cycles_simple () =
  let g = G.create ~n:3 [ edge 0 1 (); edge 1 2 (); edge 2 0 () ] in
  Alcotest.(check (list (list int))) "one triangle" [ [ 0; 1; 2 ] ]
    (Digraph.Cycles.elementary g)

let test_cycles_two_loops () =
  let g = two_sccs () in
  Alcotest.(check (list (list int))) "two cycles" [ [ 0; 1; 2 ]; [ 3; 4 ] ]
    (Digraph.Cycles.elementary g)

let test_cycles_self_loop () =
  let g = G.create ~n:2 [ edge 0 0 (); edge 0 1 (); edge 1 0 () ] in
  Alcotest.(check (list (list int))) "self loop and 2-cycle"
    [ [ 0 ]; [ 0; 1 ] ]
    (Digraph.Cycles.elementary g)

let test_cycles_complete3 () =
  (* K3 with both directions: cycles are 3 two-cycles and 2 triangles. *)
  let g =
    G.create ~n:3
      [
        edge 0 1 (); edge 1 0 (); edge 1 2 (); edge 2 1 (); edge 0 2 ();
        edge 2 0 ();
      ]
  in
  check "5 elementary cycles" 5 (List.length (Digraph.Cycles.elementary g))

let test_cycles_bounded () =
  let g =
    G.create ~n:3
      [
        edge 0 1 (); edge 1 0 (); edge 1 2 (); edge 2 1 (); edge 0 2 ();
        edge 2 0 ();
      ]
  in
  check "stops at bound" 2
    (List.length (Digraph.Cycles.elementary ~max_cycles:2 g))

let test_cycle_edges () =
  let g = G.create ~n:3 [ edge 0 1 "x"; edge 1 2 "y"; edge 2 0 "z" ] in
  let es = Digraph.Cycles.cycle_edges g [ 0; 1; 2 ] in
  Alcotest.(check (list string)) "edge labels around the cycle"
    [ "x"; "y"; "z" ]
    (List.map (fun e -> e.G.label) es)

let test_fold_cycle_weight () =
  let g = G.create ~n:2 [ edge 0 1 3; edge 1 0 4 ] in
  check "sum" 7
    (Digraph.Cycles.fold_cycle_weight g [ 0; 1 ]
       ~f:(fun acc e -> acc + e.G.label)
       ~init:0)

(* ------------------------------------------------------------------ *)
(* Karp                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mcm_simple () =
  (* Cycle 0-1 with weights 2 and 4 -> mean 3; self loop at 2 weight 1. *)
  let g = G.create ~n:3 [ edge 0 1 2; edge 1 0 4; edge 2 2 1 ] in
  match Digraph.Karp.minimum_cycle_mean g ~weight:(fun e -> e.G.label) with
  | None -> Alcotest.fail "graph has cycles"
  | Some m -> Alcotest.(check (float 1e-9)) "min mean is the self loop" 1.0 m

let test_mcm_acyclic () =
  check_bool "acyclic -> None" true
    (Digraph.Karp.minimum_cycle_mean
       (G.map_labels (fun _ -> 1) (diamond ()))
       ~weight:(fun e -> e.G.label)
    = None)

let test_max_ratio () =
  (* Two cycles: ratio 5/1 and 4/2. *)
  let g =
    G.create ~n:4
      [
        edge 0 1 (5, 1); edge 1 0 (0, 0);
        edge 2 3 (4, 1); edge 3 2 (0, 1);
      ]
  in
  match
    Digraph.Karp.maximum_cycle_ratio g
      ~num:(fun e -> fst e.G.label)
      ~den:(fun e -> snd e.G.label)
  with
  | None -> Alcotest.fail "has cycles"
  | Some (t, d) -> check_bool "ratio 5" true (t = 5 * d)

let test_max_ratio_parallel_edges () =
  (* Regression: two parallel back-edges with different denominators give
     two distinct circuits over the same node cycle; the maximum must
     consider both (here 5/1, not 5/2). *)
  let g =
    G.create ~n:2 [ edge 0 1 (5, 0); edge 1 0 (0, 2); edge 1 0 (0, 1) ]
  in
  (match
     Digraph.Karp.maximum_cycle_ratio g
       ~num:(fun e -> fst e.G.label)
       ~den:(fun e -> snd e.G.label)
   with
  | None -> Alcotest.fail "has cycles"
  | Some (t, d) -> check_bool "picks the 1-delay variant" true (t = 5 * d));
  check "variants enumerated" 2
    (List.length (Digraph.Cycles.all_cycle_edges g [ 0; 1 ]))

let test_all_cycle_edges_cap () =
  let g =
    G.create ~n:2
      [ edge 0 1 "a"; edge 0 1 "b"; edge 0 1 "c"; edge 1 0 "x"; edge 1 0 "y" ]
  in
  check "full product" 6 (List.length (Digraph.Cycles.all_cycle_edges g [ 0; 1 ]));
  check "capped" 4
    (List.length (Digraph.Cycles.all_cycle_edges ~max_variants:4 g [ 0; 1 ]))

let test_max_ratio_float_agrees () =
  let g =
    G.create ~n:4
      [
        edge 0 1 (5, 1); edge 1 0 (0, 0);
        edge 2 3 (4, 1); edge 3 2 (0, 1);
      ]
  in
  match
    Digraph.Karp.maximum_cycle_ratio_float g
      ~num:(fun e -> fst e.G.label)
      ~den:(fun e -> snd e.G.label)
  with
  | None -> Alcotest.fail "has cycles"
  | Some r -> Alcotest.(check (float 1e-5)) "approx 5" 5.0 r

(* ------------------------------------------------------------------ *)
(* Dot                                                                  *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_dot_output () =
  let g = G.create ~n:2 [ edge 0 1 () ] in
  let dot = Digraph.Dot.to_dot ~name:"t" g in
  check_bool "digraph header" true
    (String.length dot > 0 && String.sub dot 0 11 = "digraph \"t\"");
  check_bool "edge rendered" true (contains dot "n0 -> n1")

let test_dot_escaping () =
  let g = G.create ~n:1 [] in
  let dot =
    Digraph.Dot.to_dot ~node_label:(fun _ -> "say \"hi\"") g
  in
  check_bool "quotes escaped" true (contains dot "say \\\"hi\\\"")

(* ------------------------------------------------------------------ *)
(* Extra edge cases                                                     *)
(* ------------------------------------------------------------------ *)

let test_dfs_on_cyclic () =
  let g = G.create ~n:3 [ edge 0 1 (); edge 1 2 (); edge 2 0 () ] in
  check_list_int "visits each node once" [ 0; 1; 2 ]
    (Digraph.Traverse.dfs_order g 0)

let test_floyd_negative_cycle_rejected () =
  let g = G.create ~n:2 [ edge 0 1 1; edge 1 0 (-3) ] in
  check_bool "raises" true
    (match Digraph.Paths.floyd_warshall g ~weight:(fun e -> e.G.label) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_bellman_ford_unreachable () =
  let g = G.create ~n:3 [ edge 0 1 2 ] in
  match Digraph.Paths.bellman_ford g ~weight:(fun e -> e.G.label) ~src:0 with
  | None -> Alcotest.fail "no negative cycle"
  | Some d -> check "unreachable sentinel" Digraph.Paths.unreachable d.(2)

let test_karp_multigraph_self_loops () =
  (* two parallel self-loops: min mean is the cheaper one *)
  let g = G.create ~n:1 [ edge 0 0 7; edge 0 0 3 ] in
  match Digraph.Karp.minimum_cycle_mean g ~weight:(fun e -> e.G.label) with
  | None -> Alcotest.fail "has cycles"
  | Some m -> Alcotest.(check (float 1e-9)) "cheaper loop" 3.0 m

let test_mcm_matches_bruteforce =
  (* Karp vs explicit enumeration over all elementary circuits. *)
  QCheck_alcotest.to_alcotest ~long:false
    (QCheck.Test.make ~count:80 ~name:"Karp MCM = brute-force minimum"
       (QCheck.int_range 0 5_000)
       (fun seed ->
         let rng = Random.State.make [| seed; 0xca49 |] in
         let n = 3 + Random.State.int rng 4 in
         let edges =
           List.concat
             (List.init n (fun a ->
                  List.concat
                    (List.init n (fun b ->
                         if a <> b && Random.State.float rng 1.0 < 0.4 then
                           [ edge a b (Random.State.int rng 9 - 2) ]
                         else []))))
         in
         let g = G.create ~n edges in
         let weight e = e.G.label in
         let brute =
           Digraph.Cycles.elementary ~max_cycles:5_000 g
           |> List.concat_map (fun cyc -> Digraph.Cycles.all_cycle_edges g cyc)
           |> List.map (fun es ->
                  let total =
                    List.fold_left (fun acc e -> acc + weight e) 0 es
                  in
                  float_of_int total /. float_of_int (List.length es))
         in
         match (Digraph.Karp.minimum_cycle_mean g ~weight, brute) with
         | None, [] -> true
         | Some m, (_ :: _ as means) ->
             Float.abs (m -. List.fold_left min (List.hd means) means) < 1e-9
         | Some _, [] | None, _ :: _ -> false))

let () =
  Alcotest.run "digraph"
    [
      ( "graph",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "empty zero" `Quick test_empty_zero;
          Alcotest.test_case "empty negative" `Quick test_empty_negative;
          Alcotest.test_case "add_edge range" `Quick test_add_edge_out_of_range;
          Alcotest.test_case "succ/pred" `Quick test_succ_pred;
          Alcotest.test_case "insertion order" `Quick test_insertion_order;
          Alcotest.test_case "multigraph" `Quick test_multigraph;
          Alcotest.test_case "map_labels" `Quick test_map_labels;
          Alcotest.test_case "filter_edges" `Quick test_filter_edges;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "self_loops" `Quick test_self_loops;
          Alcotest.test_case "equal" `Quick test_equal;
        ] );
      ( "traverse",
        [
          Alcotest.test_case "dfs" `Quick test_dfs;
          Alcotest.test_case "bfs levels" `Quick test_bfs_levels;
          Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "reaches" `Quick test_reaches;
          Alcotest.test_case "roots/sinks" `Quick test_roots_sinks;
          Alcotest.test_case "postorder" `Quick test_postorder_covers_all;
        ] );
      ( "topo",
        [
          Alcotest.test_case "sort" `Quick test_topo_sort;
          Alcotest.test_case "cyclic" `Quick test_topo_cyclic;
          Alcotest.test_case "cyclic two sccs" `Quick test_topo_respects_edges;
          Alcotest.test_case "layers" `Quick test_layers;
          Alcotest.test_case "longest path" `Quick test_longest_path;
          Alcotest.test_case "longest path empty" `Quick test_longest_path_empty;
        ] );
      ( "scc",
        [
          Alcotest.test_case "two components" `Quick test_scc_two_components;
          Alcotest.test_case "dag" `Quick test_scc_dag;
          Alcotest.test_case "self loop" `Quick test_scc_self_loop_nontrivial;
          Alcotest.test_case "strong connectivity" `Quick test_strongly_connected;
          Alcotest.test_case "condensation" `Quick test_condensation;
          Alcotest.test_case "component_of" `Quick test_component_of;
        ] );
      ( "paths",
        [
          Alcotest.test_case "dijkstra" `Quick test_dijkstra;
          Alcotest.test_case "dijkstra unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "dijkstra negative" `Quick test_dijkstra_negative_rejected;
          Alcotest.test_case "dijkstra path" `Quick test_dijkstra_path;
          Alcotest.test_case "bellman-ford vs dijkstra" `Quick
            test_bellman_ford_matches_dijkstra;
          Alcotest.test_case "bellman-ford negative edge" `Quick
            test_bellman_ford_negative_edge;
          Alcotest.test_case "negative cycle" `Quick test_negative_cycle_detected;
          Alcotest.test_case "feasible potentials" `Quick test_feasible_potentials;
          Alcotest.test_case "floyd-warshall" `Quick test_floyd_warshall;
          Alcotest.test_case "shortest hops" `Quick test_shortest_hops;
        ] );
      ( "cycles",
        [
          Alcotest.test_case "dag" `Quick test_cycles_dag;
          Alcotest.test_case "triangle" `Quick test_cycles_simple;
          Alcotest.test_case "two loops" `Quick test_cycles_two_loops;
          Alcotest.test_case "self loop" `Quick test_cycles_self_loop;
          Alcotest.test_case "K3" `Quick test_cycles_complete3;
          Alcotest.test_case "bounded" `Quick test_cycles_bounded;
          Alcotest.test_case "cycle edges" `Quick test_cycle_edges;
          Alcotest.test_case "fold weight" `Quick test_fold_cycle_weight;
        ] );
      ( "karp",
        [
          Alcotest.test_case "min cycle mean" `Quick test_mcm_simple;
          Alcotest.test_case "acyclic" `Quick test_mcm_acyclic;
          Alcotest.test_case "max ratio exact" `Quick test_max_ratio;
          Alcotest.test_case "max ratio parallel edges" `Quick
            test_max_ratio_parallel_edges;
          Alcotest.test_case "cycle edge variants cap" `Quick
            test_all_cycle_edges_cap;
          Alcotest.test_case "max ratio float" `Quick test_max_ratio_float_agrees;
        ] );
      ( "dot",
        [
          Alcotest.test_case "output" `Quick test_dot_output;
          Alcotest.test_case "escaping" `Quick test_dot_escaping;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "dfs cyclic" `Quick test_dfs_on_cyclic;
          Alcotest.test_case "floyd negative cycle" `Quick
            test_floyd_negative_cycle_rejected;
          Alcotest.test_case "bellman-ford unreachable" `Quick
            test_bellman_ford_unreachable;
          Alcotest.test_case "karp parallel self loops" `Quick
            test_karp_multigraph_self_loops;
          test_mcm_matches_bruteforce;
        ] );
    ]
