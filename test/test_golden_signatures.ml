(* Golden-signature regression: the schedules produced by [Startup.run]
   and [Compaction.run] on every shipped workload x architecture were
   captured from the pre-occupancy-index implementation; the incremental
   index and the event-driven sweep are pure speedups, so the signatures
   must stay byte-identical. *)

module Schedule = Cyclo.Schedule
module Startup = Cyclo.Startup
module Compaction = Cyclo.Compaction

let topologies () =
  [
    ("linear8", Topology.linear_array 8);
    ("mesh2x4", Topology.mesh ~rows:2 ~cols:4);
    ("cube3", Topology.hypercube 3);
  ]

let startup_golden =
  [
    ("diffeq", "linear8", "10;1@0;1@1;4@0;1@2;3@2;1@3;6@0;7@0;1@4;3@3");
    ("diffeq", "mesh2x4", "10;1@0;1@1;4@0;1@2;3@2;1@3;6@0;7@0;1@4;3@3");
    ("diffeq", "cube3", "9;1@0;1@1;4@0;1@2;3@2;1@3;6@0;7@0;1@4;3@3");
    ("elliptic", "linear8", "42;1@0;2@0;3@0;5@0;6@0;8@0;9@0;11@0;12@0;14@0;15@0;16@0;17@0;19@0;20@0;21@0;22@0;24@0;25@0;26@0;27@0;29@0;30@0;31@0;32@0;34@0;35@0;36@0;37@0;38@0;39@0;40@0;41@0;42@0");
    ("elliptic", "mesh2x4", "42;1@0;2@0;3@0;5@0;6@0;8@0;9@0;11@0;12@0;14@0;15@0;16@0;17@0;19@0;20@0;21@0;22@0;24@0;25@0;26@0;27@0;29@0;30@0;31@0;32@0;34@0;35@0;36@0;37@0;38@0;39@0;40@0;41@0;42@0");
    ("elliptic", "cube3", "42;1@0;2@0;3@0;5@0;6@0;8@0;9@0;11@0;12@0;14@0;15@0;16@0;17@0;19@0;20@0;21@0;22@0;24@0;25@0;26@0;27@0;29@0;30@0;31@0;32@0;34@0;35@0;36@0;37@0;38@0;39@0;40@0;41@0;42@0");
    ("fig1b", "linear8", "7;1@0;2@0;3@1;4@0;5@0;7@0");
    ("fig1b", "mesh2x4", "7;1@0;2@0;3@1;4@0;5@0;7@0");
    ("fig1b", "cube3", "7;1@0;2@0;3@1;4@0;5@0;7@0");
    ("fig7", "linear8", "14;1@0;2@0;3@1;5@0;8@2;7@1;4@0;3@0;6@0;9@1;7@0;11@1;9@2;8@0;9@0;10@0;13@1;10@2;14@1");
    ("fig7", "mesh2x4", "13;1@0;2@0;3@1;4@4;6@5;5@4;4@0;3@0;6@0;7@4;7@0;9@4;7@5;8@0;9@0;10@0;11@4;8@5;13@4");
    ("fig7", "cube3", "13;1@0;2@0;3@1;4@2;6@3;5@2;4@0;3@0;6@0;7@2;7@0;9@2;7@3;8@0;9@0;10@0;11@2;8@3;13@2");
    ("lattice", "linear8", "10;1@1;8@2;1@3;6@1;7@1;9@1;1@2;5@1;7@0;9@0;1@0;3@0;4@0;6@0");
    ("lattice", "mesh2x4", "10;1@1;8@2;1@3;6@1;7@1;9@1;1@2;5@1;7@0;9@0;1@0;3@0;4@0;6@0");
    ("lattice", "cube3", "10;1@1;7@4;1@3;5@0;6@0;8@0;1@2;4@0;6@2;8@2;1@0;3@0;5@1;7@1");
    ("lms4", "linear8", "16;1@0;2@0;1@1;1@2;1@3;4@0;5@0;6@0;7@0;8@0;10@0;9@1;11@1;10@2;12@2;11@0;13@0");
    ("lms4", "mesh2x4", "14;1@0;2@0;1@1;1@2;1@3;4@0;5@0;6@0;7@0;8@0;10@0;9@1;11@1;9@4;11@4;10@2;12@2");
    ("lms4", "cube3", "14;1@0;2@0;1@1;1@2;1@3;4@0;5@0;6@0;7@0;8@0;10@0;9@1;11@1;9@2;11@2;9@4;11@4");
  ]

let best_golden =
  [
    ("diffeq", "linear8", "7;1@2;6@0;2@0;4@1;6@1;1@1;4@0;5@0;1@0;3@1");
    ("diffeq", "mesh2x4", "7;1@4;6@0;2@0;4@1;6@1;1@1;4@0;5@0;1@0;3@1");
    ("diffeq", "cube3", "7;1@2;6@0;2@0;4@1;6@1;1@1;4@0;5@0;1@0;3@1");
    ("elliptic", "linear8", "38;29@0;30@0;31@0;33@0;34@0;36@0;37@0;2@1;3@1;5@1;1@0;2@0;3@0;5@0;6@0;7@0;8@0;10@0;11@0;12@0;13@0;15@0;16@0;17@0;18@0;20@0;21@0;22@0;23@0;24@0;25@0;26@0;27@0;28@0");
    ("elliptic", "mesh2x4", "28;5@4;6@4;7@4;9@4;10@4;12@4;13@4;15@4;1@0;3@0;4@0;5@0;6@0;8@0;9@0;10@0;11@0;13@0;14@0;15@0;16@0;18@0;19@0;20@0;21@0;23@0;24@0;25@0;26@0;27@0;1@4;2@4;3@4;4@4");
    ("elliptic", "cube3", "28;5@2;6@2;7@2;9@2;10@2;12@2;13@2;15@2;1@0;3@0;4@0;5@0;6@0;8@0;9@0;10@0;11@0;13@0;14@0;15@0;16@0;18@0;19@0;20@0;21@0;23@0;24@0;25@0;26@0;27@0;1@2;2@2;3@2;4@2");
    ("fig1b", "linear8", "3;2@2;2@1;3@2;1@1;1@0;3@0");
    ("fig1b", "mesh2x4", "3;3@1;2@2;1@1;2@1;2@0;1@0");
    ("fig1b", "cube3", "3;3@1;2@3;1@1;2@1;2@0;1@0");
    ("fig7", "linear8", "6;6@1;1@1;2@2;3@1;1@4;1@3;4@2;2@1;5@2;3@3;6@2;5@3;2@4;1@2;4@0;5@0;4@1;3@4;5@1");
    ("fig7", "mesh2x4", "6;1@0;3@4;3@1;4@4;5@4;1@5;2@2;6@1;3@2;3@5;4@2;5@5;6@4;5@2;2@0;3@0;2@1;1@4;5@0");
    ("fig7", "cube3", "6;5@2;1@2;2@2;3@0;4@0;5@4;4@3;3@3;5@3;1@4;2@1;3@4;5@0;3@1;4@1;1@0;1@6;1@1;4@2");
    ("lattice", "linear8", "9;1@1;6@2;7@2;4@1;5@1;7@1;8@1;3@1;5@0;7@0;8@0;1@0;2@0;4@0");
    ("lattice", "mesh2x4", "9;1@1;6@2;7@2;4@1;5@1;7@1;8@1;3@1;5@0;7@0;8@0;1@0;2@0;4@0");
    ("lattice", "cube3", "9;1@0;6@4;7@4;4@0;5@0;7@0;8@0;3@0;5@2;7@2;8@2;2@0;4@1;6@1");
    ("lms4", "linear8", "11;1@1;8@2;9@1;9@3;10@0;1@2;2@2;3@2;4@2;5@2;7@2;6@1;8@1;6@3;8@3;7@0;9@0");
    ("lms4", "mesh2x4", "11;1@1;8@0;9@1;9@4;10@2;1@0;2@0;3@0;4@0;5@0;7@0;6@1;8@1;6@4;8@4;7@2;9@2");
    ("lms4", "cube3", "11;1@0;9@0;10@1;10@2;10@4;2@0;3@0;4@0;5@0;6@0;8@0;7@1;9@1;7@2;9@2;7@4;9@4");
  ]

let load name =
  match Dataflow.Io.read_file ~path:("../data/" ^ name ^ ".csdfg") with
  | Ok g -> g
  | Error e -> Alcotest.fail (Dataflow.Io.error_to_string e)

let check_against golden schedule_of =
  List.iter
    (fun (workload, topo_name, expected) ->
      let g = load workload in
      let topo = List.assoc topo_name (topologies ()) in
      Alcotest.(check string)
        (workload ^ " on " ^ topo_name)
        expected
        (Schedule.signature (schedule_of g topo)))
    golden

let test_startup_signatures () =
  check_against startup_golden (fun g topo -> Startup.run_on g topo)

let test_best_signatures () =
  check_against best_golden (fun g topo ->
      (Compaction.run_on ~validate:false g topo).Compaction.best)

let () =
  Alcotest.run "golden_signatures"
    [
      ( "golden",
        [
          Alcotest.test_case "startup schedules" `Quick test_startup_signatures;
          Alcotest.test_case "compacted best schedules" `Quick
            test_best_signatures;
        ] );
    ]
