(* Unit tests for schedule tables, the communication model and the shared
   timing rules (AN / PSL). *)

module Csdfg = Dataflow.Csdfg
module Schedule = Cyclo.Schedule
module Comm = Cyclo.Comm
module Timing = Cyclo.Timing
module G = Digraph.Graph

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fig1b = Workloads.Examples.fig1b

let mesh_comm () =
  Comm.of_topology
    (Topology.relabel (Topology.mesh ~rows:2 ~cols:2)
       Workloads.Examples.fig1_mesh_permutation)

let node l = Csdfg.node_of_label fig1b l
let empty () = Schedule.empty fig1b (mesh_comm ())

(* ------------------------------------------------------------------ *)
(* Comm                                                                 *)
(* ------------------------------------------------------------------ *)

let test_comm_of_topology () =
  let c = mesh_comm () in
  check "processors" 4 (Comm.n_processors c);
  check "same pe free" 0 (Comm.cost c ~src:2 ~dst:2 ~volume:5);
  check "adjacent" 3 (Comm.cost c ~src:0 ~dst:1 ~volume:3);
  check "diagonal" 6 (Comm.cost c ~src:0 ~dst:2 ~volume:3)

let test_comm_zero () =
  let c = Comm.zero ~n:4 ~name:"z" in
  check "always free" 0 (Comm.cost c ~src:0 ~dst:3 ~volume:99)

let test_comm_scaled () =
  let c = Comm.scaled (Topology.linear_array 4) ~factor:2 in
  check "doubled" 12 (Comm.cost c ~src:0 ~dst:3 ~volume:2)

let test_comm_uniform () =
  let c = Comm.uniform ~n:4 ~latency:3 ~name:"u" in
  check "flat" 6 (Comm.cost c ~src:0 ~dst:3 ~volume:2);
  check "self" 0 (Comm.cost c ~src:1 ~dst:1 ~volume:2)

let test_comm_out_of_range () =
  let c = Comm.zero ~n:2 ~name:"z" in
  check_bool "rejects" true
    (match Comm.cost c ~src:0 ~dst:5 ~volume:1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Schedule basics                                                      *)
(* ------------------------------------------------------------------ *)

let test_empty_schedule () =
  let s = empty () in
  check "length" 0 (Schedule.length s);
  check "assigned" 0 (Schedule.n_assigned s);
  check_bool "not all assigned" false (Schedule.assigned_all s);
  check "rows" 0 (Schedule.rows_needed s)

let test_assign_basics () =
  let s = Schedule.assign (empty ()) ~node:(node "B") ~cb:2 ~pe:1 in
  check "cb" 2 (Schedule.cb s (node "B"));
  check "ce spans two steps" 3 (Schedule.ce s (node "B"));
  check "pe" 1 (Schedule.pe s (node "B"));
  check "length grew" 3 (Schedule.length s);
  check_bool "assigned" true (Schedule.is_assigned s (node "B"))

let test_assign_overlap_rejected () =
  let s = Schedule.assign (empty ()) ~node:(node "B") ~cb:2 ~pe:0 in
  (* B occupies pe1 cs2-3; A may not start at cs3 there. *)
  check_bool "overlap" true
    (match Schedule.assign s ~node:(node "A") ~cb:3 ~pe:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* but another processor is fine *)
  let s' = Schedule.assign s ~node:(node "A") ~cb:3 ~pe:1 in
  check "ok elsewhere" 3 (Schedule.cb s' (node "A"))

let test_assign_twice_rejected () =
  let s = Schedule.assign (empty ()) ~node:(node "A") ~cb:1 ~pe:0 in
  check_bool "double assign" true
    (match Schedule.assign s ~node:(node "A") ~cb:2 ~pe:1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_assign_cb_zero_rejected () =
  check_bool "cb >= 1" true
    (match Schedule.assign (empty ()) ~node:(node "A") ~cb:0 ~pe:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_unassign () =
  let s = Schedule.assign (empty ()) ~node:(node "A") ~cb:1 ~pe:0 in
  let s = Schedule.unassign s (node "A") in
  check_bool "gone" false (Schedule.is_assigned s (node "A"))

let test_node_at_multicycle () =
  let s = Schedule.assign (empty ()) ~node:(node "E") ~cb:4 ~pe:2 in
  check_bool "cs4" true (Schedule.node_at s ~pe:2 ~cs:4 = Some (node "E"));
  check_bool "cs5" true (Schedule.node_at s ~pe:2 ~cs:5 = Some (node "E"));
  check_bool "cs6 free" true (Schedule.node_at s ~pe:2 ~cs:6 = None);
  check_bool "other pe free" true (Schedule.node_at s ~pe:1 ~cs:4 = None)

let test_is_free_and_slots () =
  let s = Schedule.assign (empty ()) ~node:(node "B") ~cb:2 ~pe:0 in
  check_bool "cs1 free" true (Schedule.is_free s ~pe:0 ~cb:1 ~span:1);
  check_bool "cs2 busy" false (Schedule.is_free s ~pe:0 ~cb:2 ~span:1);
  check_bool "span crossing busy" false (Schedule.is_free s ~pe:0 ~cb:1 ~span:2);
  check "slot skips the busy run" 4
    (Schedule.first_free_slot s ~pe:0 ~from:2 ~span:2);
  check "wide span before" 1 (Schedule.first_free_slot s ~pe:0 ~from:1 ~span:1);
  check "other processor" 1 (Schedule.first_free_slot s ~pe:3 ~from:0 ~span:4)

let test_first_free_slot_between_runs () =
  let s = Schedule.assign (empty ()) ~node:(node "A") ~cb:1 ~pe:0 in
  let s = Schedule.assign s ~node:(node "B") ~cb:4 ~pe:0 in
  (* gap cs2-3 fits span 2 but not span 3 *)
  check "fits gap" 2 (Schedule.first_free_slot s ~pe:0 ~from:1 ~span:2);
  check "too wide -> after" 6 (Schedule.first_free_slot s ~pe:0 ~from:1 ~span:3)

let test_first_row_and_shift () =
  let s = Schedule.assign (empty ()) ~node:(node "A") ~cb:1 ~pe:0 in
  let s = Schedule.assign s ~node:(node "C") ~cb:1 ~pe:1 in
  let s = Schedule.assign s ~node:(node "B") ~cb:2 ~pe:0 in
  Alcotest.(check (list int)) "first row" [ node "A"; node "C" ]
    (List.sort compare (Schedule.first_row s));
  check_bool "shift_up with row-1 nodes rejected" true
    (match Schedule.shift_up s with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let s = Schedule.unassign_all s [ node "A"; node "C" ] in
  let s = Schedule.shift_up s in
  check "B moved up" 1 (Schedule.cb s (node "B"))

let test_normalize () =
  let s = Schedule.assign (empty ()) ~node:(node "A") ~cb:3 ~pe:0 in
  let s = Schedule.set_length s 9 in
  let s = Schedule.normalize s in
  check "A pulled to row 1" 1 (Schedule.cb s (node "A"));
  check "length clamped" 1 (Schedule.length s)

let test_set_length_too_small () =
  let s = Schedule.assign (empty ()) ~node:(node "B") ~cb:2 ~pe:0 in
  check_bool "cannot cut occupied rows" true
    (match Schedule.set_length s 2 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_with_dfg_mismatch () =
  let other = Workloads.Examples.tiny_chain in
  check_bool "different graph rejected" true
    (match Schedule.with_dfg (empty ()) other with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_signature_distinguishes () =
  let s1 = Schedule.assign (empty ()) ~node:(node "A") ~cb:1 ~pe:0 in
  let s2 = Schedule.assign (empty ()) ~node:(node "A") ~cb:1 ~pe:1 in
  check_bool "different signatures" true
    (Schedule.signature s1 <> Schedule.signature s2);
  check "equal to itself" 0 (Schedule.compare_assignments s1 s1)

(* ------------------------------------------------------------------ *)
(* Timing: edge cost, PSL, AN                                           *)
(* ------------------------------------------------------------------ *)

let schedule_pair ~pe_u ~cb_u ~pe_v ~cb_v =
  (* A -> C edge (delay 0, volume 1); D -> A edge (delay 3, volume 3). *)
  let s = Schedule.assign (empty ()) ~node:(node "A") ~cb:cb_u ~pe:pe_u in
  Schedule.assign s ~node:(node "C") ~cb:cb_v ~pe:pe_v

let find_edge src dst =
  List.find
    (fun e -> Csdfg.label fig1b e.G.src = src && Csdfg.label fig1b e.G.dst = dst)
    (Csdfg.edges fig1b)

let test_edge_cost () =
  let s = schedule_pair ~pe_u:0 ~cb_u:1 ~pe_v:2 ~cb_v:4 in
  check "A->C over the diagonal" 2 (Timing.edge_cost s (find_edge "A" "C"));
  let same = schedule_pair ~pe_u:1 ~cb_u:1 ~pe_v:1 ~cb_v:4 in
  check "same pe" 0 (Timing.edge_cost same (find_edge "A" "C"))

let test_edge_ok_intra_iteration () =
  (* A on pe1 ends at 1; C on pe2 needs cs >= 1 + 1*1 + 1 = 3. *)
  let tight = schedule_pair ~pe_u:0 ~cb_u:1 ~pe_v:1 ~cb_v:2 in
  check_bool "cs2 too early" false (Timing.edge_ok tight (find_edge "A" "C"));
  let ok = schedule_pair ~pe_u:0 ~cb_u:1 ~pe_v:1 ~cb_v:3 in
  check_bool "cs3 fine" true (Timing.edge_ok ok (find_edge "A" "C"))

let test_psl_zero_delay_edge_is_none () =
  let s = schedule_pair ~pe_u:0 ~cb_u:1 ~pe_v:1 ~cb_v:3 in
  check_bool "no PSL for d=0" true (Timing.psl_edge s (find_edge "A" "C") = None)

let test_psl_formula () =
  (* D -> A: delay 3, volume 3.  Put D on pe1 finishing at 2 and A on pe3
     (2 hops -> M = 6) starting at 1:
     PSL = ceil((6 + 2 - 1 + 1) / 3) = ceil(8/3) = 3. *)
  let s = Schedule.assign (empty ()) ~node:(node "D") ~cb:2 ~pe:0 in
  let s = Schedule.assign s ~node:(node "A") ~cb:1 ~pe:2 in
  (match Timing.psl_edge s (find_edge "D" "A") with
  | Some v -> check "psl" 3 v
  | None -> Alcotest.fail "delayed edge has a PSL");
  (* Legal exactly from the PSL on. *)
  let s3 = Schedule.set_length s 3 in
  check_bool "legal at PSL" true (Timing.edge_ok s3 (find_edge "D" "A"));
  let s2 = Schedule.set_length s 2 in
  check_bool "illegal below PSL" false (Timing.edge_ok s2 (find_edge "D" "A"))

let test_required_length () =
  let s = Schedule.assign (empty ()) ~node:(node "D") ~cb:5 ~pe:0 in
  let s = Schedule.assign s ~node:(node "A") ~cb:1 ~pe:2 in
  (* rows = 5 dominates the PSL of 4 *)
  check "required" 5 (Timing.required_length s)

let test_zero_delay_violations () =
  let bad = schedule_pair ~pe_u:0 ~cb_u:1 ~pe_v:1 ~cb_v:2 in
  check "one violation" 1 (List.length (Timing.zero_delay_violations bad));
  let good = schedule_pair ~pe_u:0 ~cb_u:1 ~pe_v:1 ~cb_v:3 in
  check "none" 0 (List.length (Timing.zero_delay_violations good))

let test_anticipation_zero_delay_pred () =
  (* C's predecessor A on pe1 finishing at 1: AN on pe2 = 1 + 1 + 1 = 3
     (delay 0 ignores the target length). *)
  let s = Schedule.assign (empty ()) ~node:(node "A") ~cb:1 ~pe:0 in
  check "an pe2" 3
    (Timing.earliest_start s ~node:(node "C") ~pe:1 ~target_length:6);
  check "an same pe" 2
    (Timing.earliest_start s ~node:(node "C") ~pe:0 ~target_length:6)

let test_anticipation_delayed_pred () =
  (* A's predecessor D (delay 3): huge inter-iteration slack clamps AN
     to 1. *)
  let s = Schedule.assign (empty ()) ~node:(node "D") ~cb:4 ~pe:0 in
  check "clamped" 1
    (Timing.earliest_start s ~node:(node "A") ~pe:3 ~target_length:6)

let test_anticipation_unassigned_pred_skipped () =
  let s = empty () in
  check "no info -> 1"
    1
    (Timing.earliest_start s ~node:(node "E") ~pe:0 ~target_length:6)

let test_anticipation_tight_delayed_pred () =
  (* Small target length makes the delayed edge bind: D on pe1 ends 4,
     volume 3 over 2 hops = 6; AN = 6 + 4 + 1 - 3*target. *)
  let s = Schedule.assign (empty ()) ~node:(node "D") ~cb:4 ~pe:0 in
  check "binding" 2
    (Timing.earliest_start s ~node:(node "A") ~pe:2 ~target_length:3)

let () =
  Alcotest.run "schedule"
    [
      ( "comm",
        [
          Alcotest.test_case "of_topology" `Quick test_comm_of_topology;
          Alcotest.test_case "zero" `Quick test_comm_zero;
          Alcotest.test_case "scaled" `Quick test_comm_scaled;
          Alcotest.test_case "uniform" `Quick test_comm_uniform;
          Alcotest.test_case "out of range" `Quick test_comm_out_of_range;
        ] );
      ( "table",
        [
          Alcotest.test_case "empty" `Quick test_empty_schedule;
          Alcotest.test_case "assign" `Quick test_assign_basics;
          Alcotest.test_case "overlap" `Quick test_assign_overlap_rejected;
          Alcotest.test_case "double assign" `Quick test_assign_twice_rejected;
          Alcotest.test_case "cb >= 1" `Quick test_assign_cb_zero_rejected;
          Alcotest.test_case "unassign" `Quick test_unassign;
          Alcotest.test_case "node_at multicycle" `Quick test_node_at_multicycle;
          Alcotest.test_case "is_free / slots" `Quick test_is_free_and_slots;
          Alcotest.test_case "slot between runs" `Quick
            test_first_free_slot_between_runs;
          Alcotest.test_case "first row / shift" `Quick test_first_row_and_shift;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "set_length guard" `Quick test_set_length_too_small;
          Alcotest.test_case "with_dfg mismatch" `Quick test_with_dfg_mismatch;
          Alcotest.test_case "signatures" `Quick test_signature_distinguishes;
        ] );
      ( "timing",
        [
          Alcotest.test_case "edge cost" `Quick test_edge_cost;
          Alcotest.test_case "intra-iteration rule" `Quick
            test_edge_ok_intra_iteration;
          Alcotest.test_case "psl none for d=0" `Quick
            test_psl_zero_delay_edge_is_none;
          Alcotest.test_case "psl formula" `Quick test_psl_formula;
          Alcotest.test_case "required length" `Quick test_required_length;
          Alcotest.test_case "zero-delay violations" `Quick
            test_zero_delay_violations;
          Alcotest.test_case "AN zero-delay pred" `Quick
            test_anticipation_zero_delay_pred;
          Alcotest.test_case "AN delayed pred clamps" `Quick
            test_anticipation_delayed_pred;
          Alcotest.test_case "AN unassigned pred" `Quick
            test_anticipation_unassigned_pred_skipped;
          Alcotest.test_case "AN delayed pred binds" `Quick
            test_anticipation_tight_delayed_pred;
        ] );
    ]
