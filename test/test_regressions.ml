(* Regression tests for three scheduler correctness fixes:

   1. [Startup.run]'s termination fuel probed communication cost at
      volume 1 and scaled by the maximum volume — wrong (too small) for
      superlinear cost models, killing legal graphs mid-schedule.
   2. [Comm.zero] / [Comm.uniform] accepted [n <= 0] and failed later
      with an unrelated error; they must validate like [Comm.custom].
   3. [Pipeline] executed the full steady-state prologue even when the
      loop runs fewer iterations than the pipeline depth, over-executing
      iterations the loop never requested (and over-counting
      [total_time] / [overhead_ratio]). *)

module Csdfg = Dataflow.Csdfg
module Schedule = Cyclo.Schedule
module Comm = Cyclo.Comm
module Startup = Cyclo.Startup
module Pipeline = Cyclo.Pipeline
module Validator = Cyclo.Validator

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* 1. Superlinear communication costs must not exhaust the fuel         *)
(* ------------------------------------------------------------------ *)

let test_superlinear_cost_converges () =
  (* Quadratic congestion model: shipping 30 units costs 900 steps, far
     beyond [max_hops * max_volume] = 30 that the old bound assumed.
     The two producers land on different processors, so the consumer
     genuinely has to wait out the 900-step transfer. *)
  let g =
    Csdfg.make ~name:"quad"
      ~nodes:[ ("A", 1); ("B", 1); ("C", 1) ]
      ~edges:[ ("A", "C", 0, 30); ("B", "C", 0, 30) ]
  in
  let comm = Comm.custom ~n:2 ~name:"quadratic" (fun _ _ m -> m * m) in
  let s = Startup.run g comm in
  check_bool "legal" true (Validator.is_legal s);
  let c = Csdfg.node_of_label g "C" in
  check_bool "C waits out the quadratic transfer" true (Schedule.cb s c > 900)

let test_superlinear_cost_fixed_latency () =
  (* A constant (volume-independent) latency is the other non-linear
     shape: cost 5 at every volume.  Probing at volume 1 happens to work
     here, but the schedule must still be legal and finite. *)
  let g =
    Csdfg.make ~name:"lat"
      ~nodes:[ ("A", 1); ("B", 1); ("C", 1) ]
      ~edges:[ ("A", "C", 0, 4); ("B", "C", 0, 4) ]
  in
  let comm = Comm.custom ~n:2 ~name:"fixed-latency" (fun _ _ _ -> 5) in
  let s = Startup.run g comm in
  check_bool "legal" true (Validator.is_legal s)

(* ------------------------------------------------------------------ *)
(* 2. Constructor validation                                            *)
(* ------------------------------------------------------------------ *)

let contains msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

let raises_mentioning substring f =
  match f () with
  | exception Invalid_argument msg ->
      check_bool (substring ^ " in " ^ msg) true (contains msg substring)
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_zero_rejects_nonpositive () =
  raises_mentioning "Comm.zero" (fun () -> Comm.zero ~n:0 ~name:"z");
  raises_mentioning "Comm.zero" (fun () -> Comm.zero ~n:(-3) ~name:"z")

let test_uniform_rejects_nonpositive () =
  raises_mentioning "Comm.uniform" (fun () ->
      Comm.uniform ~n:0 ~latency:1 ~name:"u")

let test_custom_still_rejects () =
  raises_mentioning "Comm.custom" (fun () ->
      Comm.custom ~n:0 ~name:"c" (fun _ _ _ -> 0))

let test_valid_constructors_unchanged () =
  check "zero n" 3 (Comm.n_processors (Comm.zero ~n:3 ~name:"z"));
  check "uniform n" 2
    (Comm.n_processors (Comm.uniform ~n:2 ~latency:4 ~name:"u"))

(* ------------------------------------------------------------------ *)
(* 3. Prologue clamping for loops shorter than the pipeline depth       *)
(* ------------------------------------------------------------------ *)

(* A -> B -> C chain, fully retimed: r = {A: 2, B: 1, C: 0}, depth 2. *)
let chain_pipeline () =
  let original =
    Csdfg.make ~name:"chain"
      ~nodes:[ ("A", 1); ("B", 1); ("C", 1) ]
      ~edges:[ ("A", "B", 0, 1); ("B", "C", 0, 1) ]
  in
  let retimed =
    Csdfg.make ~name:"chain"
      ~nodes:[ ("A", 1); ("B", 1); ("C", 1) ]
      ~edges:[ ("A", "B", 1, 1); ("B", "C", 1, 1) ]
  in
  let kernel = Startup.run retimed (Comm.zero ~n:1 ~name:"uni") in
  match Pipeline.build ~original kernel with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let instructions_executed p ~n =
  Pipeline.prologue_length_for p ~n + Pipeline.epilogue_length p ~n

let test_short_loop_executes_exactly_n () =
  let p = chain_pipeline () in
  check "depth" 2 p.Pipeline.depth;
  check "steady prologue" 3 (Pipeline.prologue_length p);
  (* n = 1 < depth: each of the 3 nodes must run exactly once; the
     steady prologue alone would already run A twice. *)
  check "n=1 prologue" 2 (Pipeline.prologue_length_for p ~n:1);
  check "n=1 epilogue" 1 (Pipeline.epilogue_length p ~n:1);
  check "n=1 executes 3 instructions" 3 (instructions_executed p ~n:1);
  check "n=0 executes nothing" 0 (instructions_executed p ~n:0);
  (* no instruction may touch an iteration >= n *)
  List.iter
    (fun (i : Pipeline.instruction) ->
      check_bool "iteration < n" true (i.iteration < 1))
    (p.Pipeline.prologue_per_n 1 @ p.Pipeline.epilogue_per_n 1)

let test_short_loop_accounting () =
  let p = chain_pipeline () in
  (* all unit times: running one iteration of the chain takes 3 steps
     and is pure overhead (no kernel repetition happens) *)
  check "n=1 total time" 3 (Pipeline.total_time p ~n:1);
  Alcotest.(check (float 1e-9)) "n=1 overhead" 1.0
    (Pipeline.overhead_ratio p ~n:1)

let test_steady_state_unchanged () =
  let p = chain_pipeline () in
  check "n >= depth uses the steady prologue" (Pipeline.prologue_length p)
    (Pipeline.prologue_length_for p ~n:5);
  check "n=5 executes 3 + 2*2 pro/epilogue instructions"
    (Pipeline.prologue_length p + Pipeline.epilogue_length p ~n:5)
    (instructions_executed p ~n:5)

let () =
  Alcotest.run "regressions"
    [
      ( "fuel-bound",
        [
          Alcotest.test_case "superlinear cost converges" `Quick
            test_superlinear_cost_converges;
          Alcotest.test_case "fixed latency converges" `Quick
            test_superlinear_cost_fixed_latency;
        ] );
      ( "comm-validation",
        [
          Alcotest.test_case "zero rejects n <= 0" `Quick
            test_zero_rejects_nonpositive;
          Alcotest.test_case "uniform rejects n <= 0" `Quick
            test_uniform_rejects_nonpositive;
          Alcotest.test_case "custom rejects n <= 0" `Quick
            test_custom_still_rejects;
          Alcotest.test_case "valid constructors" `Quick
            test_valid_constructors_unchanged;
        ] );
      ( "pipeline-short-loops",
        [
          Alcotest.test_case "n < depth executes exactly n" `Quick
            test_short_loop_executes_exactly_n;
          Alcotest.test_case "n < depth accounting" `Quick
            test_short_loop_accounting;
          Alcotest.test_case "steady state unchanged" `Quick
            test_steady_state_unchanged;
        ] );
    ]
