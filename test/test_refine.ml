(* Local-search refinement: legality of every accepted move, monotone
   best tracking, determinism, and the alternation driver. *)

module Schedule = Cyclo.Schedule
module Refine = Cyclo.Refine
module Compaction = Cyclo.Compaction

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compacted g topo = (Compaction.run_on g topo).Compaction.best

let test_never_worse () =
  List.iter
    (fun (name, g) ->
      let best = compacted g (Topology.mesh ~rows:2 ~cols:2) in
      let r = Refine.run best in
      Alcotest.(check bool)
        (name ^ ": refined <= input")
        true
        (Schedule.length r.Refine.best <= Schedule.length best);
      Alcotest.(check bool)
        (name ^ ": legal")
        true
        (Cyclo.Validator.is_legal r.Refine.best))
    [
      ("fig1b", Workloads.Examples.fig1b);
      ("fig7", Workloads.Examples.fig7);
      ("diffeq", Workloads.Dsp.diffeq);
    ]

let test_deterministic () =
  let best = compacted Workloads.Examples.fig7 (Topology.ring 4) in
  let a = Refine.run ~seed:7 best in
  let b = Refine.run ~seed:7 best in
  check "same outcome" 0 (Schedule.compare_assignments a.Refine.best b.Refine.best);
  check "same acceptance count" a.Refine.moves_accepted b.Refine.moves_accepted

let test_move_budget_zero_is_identity () =
  let best = compacted Workloads.Examples.fig7 (Topology.ring 4) in
  let r = Refine.run ~moves:0 best in
  check "tried none" 0 r.Refine.moves_tried;
  check "unchanged" 0 (Schedule.compare_assignments r.Refine.best r.Refine.initial)

let test_counts_consistent () =
  let best = compacted Workloads.Examples.fig7 (Topology.mesh ~rows:2 ~cols:4) in
  let r = Refine.run best in
  check_bool "accepted <= tried" true
    (r.Refine.moves_accepted <= r.Refine.moves_tried);
  check_bool "improvements <= accepted" true
    (r.Refine.improvements <= r.Refine.moves_accepted)

let test_refine_can_improve_bad_schedule () =
  (* Start from a deliberately wasteful but legal placement: everything
     sequential on one processor of a 4-processor crossbar; local moves
     must find improvements. *)
  let g = Workloads.Examples.two_independent_chains in
  let comm = Cyclo.Comm.zero ~n:4 ~name:"z" in
  let sequential =
    List.fold_left
      (fun (s, cb) v ->
        (Schedule.assign s ~node:v ~cb ~pe:0, cb + Dataflow.Csdfg.time g v))
      (Schedule.empty g comm, 1)
      (Dataflow.Csdfg.nodes g)
    |> fst
  in
  let sequential =
    Schedule.set_length sequential (Cyclo.Timing.required_length sequential)
  in
  check "sequential length" 6 (Schedule.length sequential);
  let r = Refine.run ~moves:2000 sequential in
  check_bool "found improvements" true (r.Refine.improvements > 0);
  check_bool "strictly shorter" true (Schedule.length r.Refine.best < 6);
  check_bool "legal" true (Cyclo.Validator.is_legal r.Refine.best)

let test_resume_continues () =
  let g = Workloads.Examples.fig7 in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let first = Compaction.run_on ~passes:2 g topo in
  let resumed = Compaction.resume first.Compaction.best in
  check_bool "resume never worse" true
    (Schedule.length resumed.Compaction.best
    <= Schedule.length first.Compaction.best);
  check_bool "legal" true (Cyclo.Validator.is_legal resumed.Compaction.best)

let test_alternate_never_worse_than_compaction () =
  List.iter
    (fun (name, g, topo) ->
      let plain = Compaction.run_on g topo in
      let alt = Refine.alternate g (Cyclo.Comm.of_topology topo) in
      Alcotest.(check bool)
        (name ^ ": alternate <= compaction")
        true
        (Schedule.length alt <= Schedule.length plain.Compaction.best);
      Alcotest.(check bool) (name ^ ": legal") true (Cyclo.Validator.is_legal alt))
    [
      ("fig1b", Workloads.Examples.fig1b, Topology.complete 4);
      ("iir", Workloads.Dsp.iir_biquad, Topology.ring 4);
    ]

let test_polish () =
  let g = Workloads.Examples.fig7 in
  let r = Compaction.run_on g (Topology.hypercube 3) in
  let polished = Refine.polish r in
  check_bool "polish <= best" true
    (Schedule.length polished <= Schedule.length r.Compaction.best)

let test_autotune_never_worse_than_any_config () =
  let g = Workloads.Examples.fig7 in
  let topo = Topology.mesh ~rows:2 ~cols:4 in
  let t = Cyclo.Autotune.run_on g topo in
  check_bool "legal" true (Cyclo.Validator.is_legal t.Cyclo.Autotune.best);
  List.iter
    (fun (mode, scoring) ->
      let r = Compaction.run_on ~mode ~scoring g topo in
      Alcotest.(check bool)
        "winner <= every configuration" true
        (Schedule.length t.Cyclo.Autotune.best
        <= Schedule.length r.Compaction.best))
    [
      (Cyclo.Remap.With_relaxation, Cyclo.Remap.Pressure_first);
      (Cyclo.Remap.With_relaxation, Cyclo.Remap.Earliest_step);
      (Cyclo.Remap.Without_relaxation, Cyclo.Remap.Pressure_first);
      (Cyclo.Remap.Without_relaxation, Cyclo.Remap.Earliest_step);
    ]

let test_autotune_table_sorted () =
  let t =
    Cyclo.Autotune.run_on Workloads.Dsp.diffeq (Topology.ring 4)
  in
  check "four configurations" 4 (List.length t.Cyclo.Autotune.table);
  let lengths =
    List.map (fun e -> e.Cyclo.Autotune.length) t.Cyclo.Autotune.table
  in
  check_bool "sorted ascending" true (List.sort compare lengths = lengths);
  check "winner is the head" (List.hd lengths)
    t.Cyclo.Autotune.winner.Cyclo.Autotune.length

let test_autotune_parallel_equals_sequential () =
  let g = Workloads.Dsp.iir_biquad in
  let topo = Topology.mesh ~rows:2 ~cols:2 in
  let a = Cyclo.Autotune.run_on ~parallel:true g topo in
  let b = Cyclo.Autotune.run_on ~parallel:false g topo in
  check "same winner length" b.Cyclo.Autotune.winner.Cyclo.Autotune.length
    a.Cyclo.Autotune.winner.Cyclo.Autotune.length

let test_incomplete_rejected () =
  let g = Workloads.Examples.fig1b in
  let s = compacted g (Topology.complete 4) in
  let s = Schedule.unassign s 0 in
  check_bool "raises" true
    (match Refine.run s with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "refine"
    [
      ( "local-search",
        [
          Alcotest.test_case "never worse" `Quick test_never_worse;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "zero budget" `Quick test_move_budget_zero_is_identity;
          Alcotest.test_case "counters" `Quick test_counts_consistent;
          Alcotest.test_case "improves bad schedules" `Quick
            test_refine_can_improve_bad_schedule;
          Alcotest.test_case "incomplete rejected" `Quick test_incomplete_rejected;
        ] );
      ( "autotune",
        [
          Alcotest.test_case "never worse than any config" `Quick
            test_autotune_never_worse_than_any_config;
          Alcotest.test_case "table sorted" `Quick test_autotune_table_sorted;
          Alcotest.test_case "parallel = sequential" `Quick
            test_autotune_parallel_equals_sequential;
        ] );
      ( "alternation",
        [
          Alcotest.test_case "resume" `Quick test_resume_continues;
          Alcotest.test_case "never worse" `Quick
            test_alternate_never_worse_than_compaction;
          Alcotest.test_case "polish" `Quick test_polish;
        ] );
    ]
