(* Tests for the workload library: every benchmark graph must be legal
   and match its documented shape. *)

module Csdfg = Dataflow.Csdfg

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_all_legal () =
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) (name ^ " legal") true (Csdfg.is_legal g))
    (Workloads.Suite.all ())

let test_suite_names_unique () =
  let names = Workloads.Suite.names () in
  check "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_suite_find () =
  check_bool "finds" true (Workloads.Suite.find "fig1b" <> None);
  check_bool "missing" true (Workloads.Suite.find "nope" = None)

let test_fig7_shape () =
  let g = Workloads.Examples.fig7 in
  check "19 nodes" 19 (Csdfg.n_nodes g);
  (* paper: C F J L P are the two-cycle nodes *)
  List.iter
    (fun l -> check ("t " ^ l) 2 (Csdfg.time g (Csdfg.node_of_label g l)))
    [ "C"; "F"; "J"; "L"; "P" ];
  let singles = List.filter (fun v -> Csdfg.time g v = 1) (Csdfg.nodes g) in
  check "14 unit-time nodes" 14 (List.length singles);
  check_bool "cyclic" true (Digraph.Cycles.has_cycle (Csdfg.graph g))

let test_elliptic_op_mix () =
  let g = Workloads.Filters.elliptic in
  let adds, mults = Workloads.Filters.elliptic_op_counts in
  check "total ops" 34 (Csdfg.n_nodes g);
  check "adds" adds
    (List.length (List.filter (fun v -> Csdfg.time g v = 1) (Csdfg.nodes g)));
  check "mults" mults
    (List.length (List.filter (fun v -> Csdfg.time g v = 2) (Csdfg.nodes g)));
  check_bool "cyclic" true (Digraph.Cycles.has_cycle (Csdfg.graph g))

let test_lattice_shape () =
  let g = Workloads.Filters.lattice in
  check "3 stages -> 14 nodes" 14 (Csdfg.n_nodes g);
  check_bool "cyclic" true (Digraph.Cycles.has_cycle (Csdfg.graph g));
  let g5 = Workloads.Filters.lattice_stages 5 in
  check "5 stages -> 22 nodes" 22 (Csdfg.n_nodes g5);
  check_bool "still legal" true (Csdfg.is_legal g5)

let test_lattice_bad_stages () =
  check_bool "rejects 0" true
    (match Workloads.Filters.lattice_stages 0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_fir_shape () =
  let g = Workloads.Dsp.fir ~taps:5 in
  (* 5 multipliers + 4 partial sums + x + y *)
  check "nodes" 11 (Csdfg.n_nodes g);
  check_bool "legal" true (Csdfg.is_legal g);
  let g1 = Workloads.Dsp.fir ~taps:1 in
  check "degenerate tap" 3 (Csdfg.n_nodes g1);
  check_bool "degenerate legal" true (Csdfg.is_legal g1)

let test_correlator_shape () =
  let g = Workloads.Dsp.correlator ~lags:3 in
  check "nodes" 7 (Csdfg.n_nodes g);
  check_bool "legal" true (Csdfg.is_legal g)

let test_diffeq_iteration_bound () =
  (* diffeq's tightest loop is s2 -> m2 -> m3 -> s1 -> s2 with delay 1:
     T = 1 + 2 + 2 + 1 = 6. *)
  match Dataflow.Iteration_bound.exact Workloads.Dsp.diffeq with
  | None -> Alcotest.fail "diffeq is cyclic"
  | Some (t, d) -> check_bool "bound 6" true (t = 6 * d)

let test_dsp_all () =
  List.iter
    (fun g ->
      Alcotest.(check bool) (Csdfg.name g ^ " legal") true (Csdfg.is_legal g))
    (Workloads.Dsp.all ())

let test_stencil_shape () =
  let g = Workloads.Kernels.stencil1d ~points:5 in
  check "nodes" 5 (Csdfg.n_nodes g);
  (* interior points: self + both neighbours = 13 edges for 5 points *)
  check "edges" 13 (Csdfg.n_edges g);
  check_bool "legal" true (Csdfg.is_legal g);
  (* every dependency is loop-carried: the intra-iteration DAG is empty *)
  check "fully pipelinable" 0
    (Digraph.Graph.n_edges (Csdfg.zero_delay_graph g));
  let g1 = Workloads.Kernels.stencil1d ~points:1 in
  check "degenerate" 1 (Csdfg.n_nodes g1);
  check_bool "degenerate legal" true (Csdfg.is_legal g1)

let test_matvec_shape () =
  let g = Workloads.Kernels.matvec ~size:3 in
  (* 3 x-nodes + 9 multipliers + 2 adders per row *)
  check "nodes" 18 (Csdfg.n_nodes g);
  check_bool "legal" true (Csdfg.is_legal g);
  let g1 = Workloads.Kernels.matvec ~size:1 in
  check "size 1" 2 (Csdfg.n_nodes g1);
  check_bool "size 1 legal" true (Csdfg.is_legal g1)

let test_lms_shape () =
  let g = Workloads.Kernels.lms ~taps:4 in
  (* x + 4 mf + 3 sums + err + 4 wu + 4 wa *)
  check "nodes" 17 (Csdfg.n_nodes g);
  check_bool "legal" true (Csdfg.is_legal g);
  (* the weight-update recurrence is the binding cycle:
     mf -> sums -> err -> wu -> wa -> mf with delay 1 *)
  check_bool "cyclic" true (Digraph.Cycles.has_cycle (Csdfg.graph g))

let test_volterra_shape () =
  let g = Workloads.Kernels.volterra in
  (* x + 3 ml + 3 pp + 3 mq + 5 y *)
  check "nodes" 15 (Csdfg.n_nodes g);
  check_bool "legal" true (Csdfg.is_legal g)

let test_fft_stage_shape () =
  let g = Workloads.Kernels.fft_stage ~points:8 in
  (* 8 block slots + 4 butterflies x (multiplier + 2 adders) *)
  check "nodes" 20 (Csdfg.n_nodes g);
  check_bool "legal" true (Csdfg.is_legal g);
  check_bool "rejects non powers of two" true
    (match Workloads.Kernels.fft_stage ~points:6 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let g2 = Workloads.Kernels.fft_stage ~points:2 in
  check "minimal stage" 5 (Csdfg.n_nodes g2)

let test_biquad_cascade_shape () =
  let g = Workloads.Kernels.biquad_cascade ~sections:3 in
  (* in + 3 x (w, a1, a2, b1, y) *)
  check "nodes" 16 (Csdfg.n_nodes g);
  check_bool "legal" true (Csdfg.is_legal g);
  (* per-section recurrence w -> a1 -> w has T = 1 + 2 = 3, delay 1 *)
  match Dataflow.Iteration_bound.exact Workloads.Kernels.(biquad_cascade ~sections:1) with
  | Some (t, d) -> check_bool "bound 3" true (t = 3 * d)
  | None -> Alcotest.fail "cyclic"

let test_wavefront_shape () =
  let g = Workloads.Kernels.wavefront ~size:4 in
  check "cells" 16 (Csdfg.n_nodes g);
  check_bool "legal" true (Csdfg.is_legal g);
  (* intra-sweep dependencies are exactly the west chains *)
  check "zero-delay edges" 12
    (Digraph.Graph.n_edges (Csdfg.zero_delay_graph g));
  let g1 = Workloads.Kernels.wavefront ~size:1 in
  check "single cell" 1 (Csdfg.n_nodes g1)

let test_kernels_schedule_everywhere () =
  List.iter
    (fun g ->
      let r = Cyclo.Compaction.run_on g (Topology.mesh ~rows:2 ~cols:2) in
      Alcotest.(check bool)
        (Csdfg.name g ^ " legal schedule")
        true
        (Cyclo.Validator.is_legal r.Cyclo.Compaction.best))
    (Workloads.Kernels.all ())

let test_stencil_reaches_bound () =
  (* All-delayed dependencies: the iteration bound is tiny and the
     compactor should approach it given enough processors. *)
  let g = Workloads.Kernels.stencil1d ~points:4 in
  let r = Cyclo.Compaction.run_on g (Topology.complete 4) in
  let bound = Option.get (Dataflow.Iteration_bound.exact_ceil g) in
  Alcotest.(check bool) "close to bound" true
    (Cyclo.Schedule.length r.Cyclo.Compaction.best <= bound + 2)

let test_random_always_legal () =
  for seed = 0 to 49 do
    let g = Workloads.Random_gen.generate ~seed () in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d" seed)
      true (Csdfg.is_legal g)
  done

let test_random_deterministic () =
  let a = Workloads.Random_gen.generate ~seed:7 () in
  let b = Workloads.Random_gen.generate ~seed:7 () in
  Alcotest.(check string) "same text" (Dataflow.Io.to_string a)
    (Dataflow.Io.to_string b)

let test_random_connected () =
  for seed = 0 to 19 do
    let g = Workloads.Random_gen.generate_connected ~seed () in
    (* every non-root node has at least one predecessor *)
    let orphans =
      List.filter
        (fun v -> v <> 0 && Csdfg.pred g v = [])
        (Csdfg.nodes g)
    in
    check (Printf.sprintf "seed %d no orphans" seed) 0 (List.length orphans)
  done

let test_random_params_respected () =
  let params =
    { Workloads.Random_gen.default with nodes = 30; max_time = 5; max_delay = 2 }
  in
  let g = Workloads.Random_gen.generate ~params ~seed:3 () in
  check "node count" 30 (Csdfg.n_nodes g);
  List.iter
    (fun v -> check_bool "time in range" true (Csdfg.time g v <= 5))
    (Csdfg.nodes g);
  List.iter
    (fun e -> check_bool "delay in range" true (Csdfg.delay e <= 2))
    (Csdfg.edges g)

let test_layered_shape () =
  let g = Workloads.Random_gen.layered ~nodes:2_000 ~seed:1 () in
  check "node count" 2_000 (Csdfg.n_nodes g);
  Alcotest.(check string) "name encodes size and seed" "layered-2000-1"
    (Csdfg.name g);
  check_bool "legal" true (Csdfg.is_legal g);
  check_bool "cyclic (feedback edges present)" true
    (Digraph.Cycles.has_cycle (Csdfg.graph g));
  (* every backward edge carries delay — that is what keeps it legal *)
  List.iter
    (fun (e : Dataflow.Csdfg.attr Digraph.Graph.edge) ->
      if e.Digraph.Graph.src >= e.Digraph.Graph.dst then
        check_bool "feedback edge delayed" true (Csdfg.delay e >= 1)
      else check "forward edge zero-delay" 0 (Csdfg.delay e))
    (Csdfg.edges g)

let test_layered_deterministic () =
  let a = Workloads.Random_gen.layered ~nodes:1_000 ~seed:42 () in
  let b = Workloads.Random_gen.layered ~nodes:1_000 ~seed:42 () in
  let c = Workloads.Random_gen.layered ~nodes:1_000 ~seed:43 () in
  Alcotest.(check string) "same seed, same text" (Dataflow.Io.to_string a)
    (Dataflow.Io.to_string b);
  check_bool "different seed, different text" true
    (Dataflow.Io.to_string a <> Dataflow.Io.to_string c)

let test_layered_linear_degree () =
  (* the scale generator must stay O(nodes * fan_in): with fan_in f,
     no node may have more than f zero-delay parents *)
  let g = Workloads.Random_gen.layered ~fan_in:4 ~nodes:3_000 ~seed:5 () in
  List.iter
    (fun v ->
      let zd =
        List.filter (fun e -> Csdfg.delay e = 0) (Csdfg.pred g v)
      in
      check_bool "fan-in bounded" true (List.length zd <= 4))
    (Csdfg.nodes g)

let test_layered_schedules () =
  let g = Workloads.Random_gen.layered ~nodes:500 ~seed:9 () in
  let s = Cyclo.Startup.run_on g (Topology.linear_array 4) in
  check_bool "startup schedule is legal" true (Cyclo.Validator.is_legal s)

let test_layered_bad_args () =
  check_bool "rejects 0 nodes" true
    (match Workloads.Random_gen.layered ~nodes:0 ~seed:1 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "rejects fan_in 0" true
    (match Workloads.Random_gen.layered ~fan_in:0 ~nodes:10 ~seed:1 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_dot_export_workloads () =
  (* Rendering should not raise and should mention every node label. *)
  let g = Workloads.Examples.fig1b in
  let dot = Dataflow.Dot_export.to_dot g in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        ("mentions " ^ Csdfg.label g v)
        true
        (let needle = Csdfg.label g v in
         let hl = String.length dot and nl = String.length needle in
         let rec go i =
           i + nl <= hl && (String.sub dot i nl = needle || go (i + 1))
         in
         go 0))
    (Csdfg.nodes g)

let () =
  Alcotest.run "workloads"
    [
      ( "suite",
        [
          Alcotest.test_case "all legal" `Quick test_all_legal;
          Alcotest.test_case "unique names" `Quick test_suite_names_unique;
          Alcotest.test_case "find" `Quick test_suite_find;
        ] );
      ( "examples",
        [ Alcotest.test_case "fig7 shape" `Quick test_fig7_shape ] );
      ( "filters",
        [
          Alcotest.test_case "elliptic op mix" `Quick test_elliptic_op_mix;
          Alcotest.test_case "lattice shape" `Quick test_lattice_shape;
          Alcotest.test_case "lattice bad stages" `Quick test_lattice_bad_stages;
        ] );
      ( "dsp",
        [
          Alcotest.test_case "fir" `Quick test_fir_shape;
          Alcotest.test_case "correlator" `Quick test_correlator_shape;
          Alcotest.test_case "diffeq bound" `Quick test_diffeq_iteration_bound;
          Alcotest.test_case "all legal" `Quick test_dsp_all;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "stencil" `Quick test_stencil_shape;
          Alcotest.test_case "matvec" `Quick test_matvec_shape;
          Alcotest.test_case "lms" `Quick test_lms_shape;
          Alcotest.test_case "volterra" `Quick test_volterra_shape;
          Alcotest.test_case "fft stage" `Quick test_fft_stage_shape;
          Alcotest.test_case "biquad cascade" `Quick test_biquad_cascade_shape;
          Alcotest.test_case "wavefront" `Quick test_wavefront_shape;
          Alcotest.test_case "all schedule" `Quick test_kernels_schedule_everywhere;
          Alcotest.test_case "stencil bound" `Quick test_stencil_reaches_bound;
        ] );
      ( "random",
        [
          Alcotest.test_case "always legal" `Quick test_random_always_legal;
          Alcotest.test_case "deterministic" `Quick test_random_deterministic;
          Alcotest.test_case "connected" `Quick test_random_connected;
          Alcotest.test_case "params" `Quick test_random_params_respected;
          Alcotest.test_case "layered shape" `Quick test_layered_shape;
          Alcotest.test_case "layered deterministic" `Quick
            test_layered_deterministic;
          Alcotest.test_case "layered fan-in" `Quick
            test_layered_linear_degree;
          Alcotest.test_case "layered schedules" `Quick
            test_layered_schedules;
          Alcotest.test_case "layered bad args" `Quick
            test_layered_bad_args;
        ] );
      ( "export",
        [ Alcotest.test_case "dot" `Quick test_dot_export_workloads ] );
    ]
