(* Executable specification of the schedule placement queries.

   [Schedule] answers [is_free] / [node_at] / [first_free_slot] /
   [first_row] / [rows_needed] from an incremental per-processor
   occupancy index.  This file keeps the pre-index semantics alive as a
   naive O(V)-per-query reference built only on [entry] + [duration],
   and checks agreement on randomly built heterogeneous schedules —
   including through assign / unassign churn, which is exactly what the
   index must keep consistent. *)

module Csdfg = Dataflow.Csdfg
module Schedule = Cyclo.Schedule
module Comm = Cyclo.Comm

(* ------------------------------------------------------------------ *)
(* The naive reference: every query is a scan over all entries          *)
(* ------------------------------------------------------------------ *)

module Spec = struct
  let entries s =
    List.filter_map
      (fun v -> Option.map (fun e -> (v, e)) (Schedule.entry s v))
      (Csdfg.nodes (Schedule.dfg s))

  let ce_of s v (e : Schedule.entry) =
    e.cb + Schedule.duration s ~node:v ~pe:e.pe - 1

  let node_at s ~pe ~cs =
    List.find_opt
      (fun (v, (e : Schedule.entry)) ->
        e.pe = pe && e.cb <= cs && cs <= ce_of s v e)
      (entries s)
    |> Option.map fst

  let is_free s ~pe ~cb ~span =
    let rec free cs = cs >= cb + span || (node_at s ~pe ~cs = None && free (cs + 1)) in
    free cb

  let first_free_slot s ~pe ~from ~span =
    let rec go cs = if is_free s ~pe ~cb:cs ~span then cs else go (cs + 1) in
    go (max 1 from)

  let rows_needed s =
    List.fold_left (fun acc (v, e) -> max acc (ce_of s v e)) 0 (entries s)

  let first_row s =
    List.filter_map
      (fun (v, (e : Schedule.entry)) -> if e.cb = 1 then Some v else None)
      (entries s)
    |> List.sort compare
end

(* ------------------------------------------------------------------ *)
(* Random heterogeneous schedules via assign / unassign churn           *)
(* ------------------------------------------------------------------ *)

let graph_of_seed seed =
  let params =
    { Workloads.Random_gen.default with nodes = 10; feedback_edges = 3 }
  in
  Workloads.Random_gen.generate_connected ~params ~seed ()

(* Deterministically drive the schedule through a mix of placements and
   removals; placements go through the indexed [first_free_slot], so a
   broken index would also build broken (overlapping) states — caught by
   [assign] raising or by the query mismatches below. *)
let schedule_of_seed seed =
  let g = graph_of_seed seed in
  let np = 4 in
  let speeds = Array.init np (fun p -> 1 + ((seed + p) mod 3)) in
  let comm = Comm.zero ~n:np ~name:"occ" in
  let n = Csdfg.n_nodes g in
  let s = ref (Schedule.empty ~speeds g comm) in
  let rng = ref (seed land 0xFFFF) in
  let next_rand m =
    rng := ((!rng * 25173) + 13849) land 0xFFFF;
    !rng mod m
  in
  for v = 0 to n - 1 do
    let pe = next_rand np in
    let from = 1 + next_rand 6 in
    let span = Schedule.duration !s ~node:v ~pe in
    let cb = Schedule.first_free_slot !s ~pe ~from ~span in
    s := Schedule.assign !s ~node:v ~cb ~pe
  done;
  (* churn: remove a third of the nodes, re-place half of those *)
  for v = 0 to n - 1 do
    if next_rand 3 = 0 then begin
      s := Schedule.unassign !s v;
      if next_rand 2 = 0 then begin
        let pe = next_rand np in
        let span = Schedule.duration !s ~node:v ~pe in
        let cb = Schedule.first_free_slot !s ~pe ~from:1 ~span in
        s := Schedule.assign !s ~node:v ~cb ~pe
      end
    end
  done;
  !s

let seed_arb = QCheck.int_range 0 10_000

let prop_queries_match_spec =
  QCheck.Test.make ~count:300
    ~name:"indexed queries agree with the naive executable spec" seed_arb
    (fun seed ->
      let s = schedule_of_seed seed in
      let np = Schedule.n_processors s in
      let horizon = Spec.rows_needed s + 3 in
      for pe = 0 to np - 1 do
        for cs = 1 to horizon do
          if Schedule.node_at s ~pe ~cs <> Spec.node_at s ~pe ~cs then
            QCheck.Test.fail_reportf "node_at pe=%d cs=%d" pe cs;
          for span = 1 to 3 do
            if
              Schedule.is_free s ~pe ~cb:cs ~span
              <> Spec.is_free s ~pe ~cb:cs ~span
            then QCheck.Test.fail_reportf "is_free pe=%d cs=%d span=%d" pe cs span;
            if
              Schedule.first_free_slot s ~pe ~from:cs ~span
              <> Spec.first_free_slot s ~pe ~from:cs ~span
            then
              QCheck.Test.fail_reportf "first_free_slot pe=%d from=%d span=%d"
                pe cs span
          done
        done
      done;
      Schedule.rows_needed s = Spec.rows_needed s
      && Schedule.first_row s = Spec.first_row s)

let prop_hash_consistent =
  QCheck.Test.make ~count:200
    ~name:"equal assignments hash equally (and usually conversely)" seed_arb
    (fun seed ->
      let s1 = schedule_of_seed seed in
      let s2 = schedule_of_seed seed in
      let s3 = schedule_of_seed (seed + 1) in
      Schedule.hash s1 = Schedule.hash s2
      && (Schedule.compare_assignments s1 s3 = 0
         || Schedule.hash s1 <> Schedule.hash s3))

let prop_shift_up_matches_spec =
  QCheck.Test.make ~count:200
    ~name:"shift_up keeps index and entries in sync" seed_arb
    (fun seed ->
      let s = schedule_of_seed seed in
      (* make row 1 free so shift_up is legal: bump everything by one,
         latest starters first so no move lands on a not-yet-moved
         neighbour *)
      let bumped =
        List.fold_left
          (fun acc (v, (e : Schedule.entry)) ->
            Schedule.assign
              (Schedule.unassign acc v)
              ~node:v ~cb:(e.cb + 1) ~pe:e.pe)
          s
          (List.sort
             (fun (_, (a : Schedule.entry)) (_, (b : Schedule.entry)) ->
               compare b.cb a.cb)
             (Spec.entries s))
      in
      let shifted = Schedule.shift_up bumped in
      Schedule.rows_needed shifted = Spec.rows_needed shifted
      && Schedule.first_row shifted = Spec.first_row shifted
      && Spec.entries shifted = Spec.entries s)

let () =
  Alcotest.run "occupancy"
    [
      ( "spec-agreement",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_queries_match_spec;
            prop_hash_consistent;
            prop_shift_up_matches_spec;
          ] );
    ]
