(* Chaos harness for the scheduling daemon: repeatedly SIGKILL the
   server mid-request, optionally corrupt or truncate its warm-restart
   journal, restart it from [--state], and assert that every reply the
   pre-crash daemon ever produced is reproduced byte-identically
   (modulo the ["cached"] flag) — and that no failure path ever
   degrades into an ["internal"] error.

   This is a plain executable, not an Alcotest suite: it forks the
   server as a child process (fork must happen before any Domain is
   spawned, so the harness cannot share a process with the server the
   way test_service.ml's in-process socket tests do).  Exit code 0 on
   success, 1 on any violated invariant, with a one-line verdict on
   stdout either way.

   Knobs (environment):
   - [CHAOS_CYCLES]  kill/restart cycles to run (default 5; CI uses 50)
   - [CHAOS_SEED]    LCG seed for kill timing and corruption (default 1) *)

module P = Service.Protocol
module C = Service.Client

let cycles =
  match Sys.getenv_opt "CHAOS_CYCLES" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 5)
  | None -> 5

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 1)
  | None -> 1

(* Self-contained LCG so runs are reproducible from CHAOS_SEED alone. *)
let rng = ref (seed land 0x3FFFFFFF)

let rand_int bound =
  rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
  !rng mod bound

let dir =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ccsched-chaos-%d" (Unix.getpid ()))

let socket_path = Filename.concat dir "chaos.sock"
let journal_path = Filename.concat dir "state.ccsj"
let log_path = Filename.concat dir "server.log"

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("chaos: FAIL: " ^ msg);
      exit 1)
    fmt

(* {2 Server lifecycle} *)

let start_server () =
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  match Unix.fork () with
  | 0 ->
      (* child: structured logs (incl. serve.restore) go to the log
         file the parent greps after corruption cycles *)
      let log_oc =
        open_out_gen [ Open_append; Open_creat ] 0o644 log_path
      in
      Obs.Log.enable ~level:Obs.Log.Info (fun line ->
          output_string log_oc (line ^ "\n");
          flush log_oc);
      let cfg =
        {
          (Service.Server.default_config ~socket_path) with
          capacity = 256;
          domains = Some 1;
          max_clients = 4;
          state_dir = Some dir;
        }
      in
      (match Service.Server.run cfg with
      | Ok () -> exit 0
      | Error msg ->
          prerr_endline ("chaos server: " ^ msg);
          exit 1)
  | pid -> pid

let connect_with_patience () =
  let rec go n =
    match C.connect socket_path with
    | Ok c -> c
    | Error _ when n > 0 ->
        Unix.sleepf 0.01;
        go (n - 1)
    | Error e ->
        fail "server never came up: %s" (C.error_to_string e)
  in
  go 500

let kill_server pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

let graceful_shutdown conn pid =
  (match C.rpc_line conn (P.request_to_json ~id:9999 P.Shutdown) with
  | Ok _ -> ()
  | Error e -> fail "graceful shutdown failed: %s" (C.error_to_string e));
  C.close conn;
  ignore (Unix.waitpid [] pid)

(* {2 Journal corruption} *)

let corrupt_journal () =
  match
    try Some (Unix.stat journal_path).Unix.st_size
    with Unix.Unix_error _ -> None
  with
  | None | Some 0 -> `Untouched
  | Some size ->
      if rand_int 2 = 0 then begin
        (* torn tail: cut at a uniformly random byte boundary *)
        let cut = rand_int (size + 1) in
        let fd = Unix.openfile journal_path [ Unix.O_RDWR ] 0o644 in
        Unix.ftruncate fd cut;
        Unix.close fd;
        `Truncated cut
      end
      else begin
        (* bit rot: flip one bit of one uniformly random byte *)
        let pos = rand_int size in
        let fd = Unix.openfile journal_path [ Unix.O_RDWR ] 0o644 in
        ignore (Unix.lseek fd pos Unix.SEEK_SET);
        let b = Bytes.create 1 in
        ignore (Unix.read fd b 0 1);
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor (1 lsl rand_int 8)));
        ignore (Unix.lseek fd pos Unix.SEEK_SET);
        ignore (Unix.write fd b 0 1);
        Unix.close fd;
        `Flipped pos
      end

(* {2 Invariants} *)

(* cached:true vs cached:false is the one permitted difference between
   a pre-crash reply and its post-restart reproduction *)
let normalize reply =
  let sub = "\"cached\":true" and by = "\"cached\":false" in
  let ls = String.length sub and n = String.length reply in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i <= n - ls do
    if String.sub reply !i ls = sub then begin
      Buffer.add_string buf by;
      i := !i + ls
    end
    else begin
      Buffer.add_char buf reply.[!i];
      incr i
    end
  done;
  Buffer.add_substring buf reply !i (n - !i);
  Buffer.contents buf

let assert_not_internal ~line reply =
  match P.parse_reply reply with
  | Ok (P.Error_reply { err; _ }) when err.P.code = "internal" ->
      fail "internal error leaked: %s (request %s)" err.P.message line
  | Ok _ -> ()
  | Error msg -> fail "unparseable reply %S: %s" reply msg

(* Every (request line, reply) the daemon ever produced, in order. *)
let recorded : (string * string) list ref = ref []

let rpc_recorded conn line =
  match C.rpc_line conn line with
  | Ok reply ->
      assert_not_internal ~line reply;
      recorded := (line, reply) :: !recorded;
      reply
  | Error e -> fail "rpc failed: %s" (C.error_to_string e)

let verify_history conn =
  List.iter
    (fun (line, expected) ->
      match C.rpc_line conn line with
      | Ok reply ->
          assert_not_internal ~line reply;
          if normalize reply <> normalize expected then
            fail "reply drifted after restart.\nrequest:  %s\nexpected: %s\ngot:      %s"
              line expected reply
      | Error e ->
          fail "replaying %s: %s" line (C.error_to_string e))
    (List.rev !recorded)

let log_contains needle =
  match open_in log_path with
  | exception Sys_error _ -> false
  | ic ->
      let found = ref false in
      (try
         while not !found do
           if
             let line = input_line ic in
             let ln = String.length needle in
             let n = String.length line in
             let rec scan i =
               i + ln <= n && (String.sub line i ln = needle || scan (i + 1))
             in
             scan 0
           then found := true
         done
       with End_of_file -> ());
      close_in ic;
      !found

(* {2 The cycle} *)

let archs = [| "mesh:2x4"; "ring:8"; "hypercube:3"; "linear:8" |]

let () =
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Printf.printf "chaos: %d cycles, seed %d, state %s\n%!" cycles seed dir;
  let corruptions = ref 0 in
  for cycle = 1 to cycles do
    let pid = start_server () in
    let conn = connect_with_patience () in
    (* 1. everything the daemon ever answered must still hold *)
    verify_history conn;
    (* 2. fresh work for this cycle: a schedule and a replan chained on
       it, both journaled once their replies are on the wire *)
    let knobs = { P.default_knobs with P.passes = Some (16 + cycle) } in
    let sched_line =
      P.request_to_json ~id:(2 * cycle)
        (P.Schedule
           {
             graph = P.Workload "fig7";
             arch = archs.(cycle mod Array.length archs);
             knobs;
           })
    in
    let reply = rpc_recorded conn sched_line in
    let session =
      match P.parse_reply reply with
      | Ok (P.Scheduled { session; _ }) -> session
      | _ -> fail "expected a schedule reply, got %s" reply
    in
    ignore
      (rpc_recorded conn
         (P.request_to_json ~id:((2 * cycle) + 1)
            (P.Replan
               {
                 session;
                 fail_pes = [ 1 + rand_int 4 ];
                 fail_links = [];
                 deadline_ms = None;
               })));
    (* 3. kill the daemon mid-request: the in-flight search needs
       hundreds of ms, the kill lands within ~10 *)
    let in_flight =
      P.request_to_json ~id:999
        (P.Schedule
           {
             graph = P.Workload "elliptic-slow3";
             arch = "mesh:4x4";
             knobs = { P.default_knobs with P.passes = Some 10_000 };
           })
    in
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket_path);
    let payload = in_flight ^ "\n" in
    ignore (Unix.write_substring fd payload 0 (String.length payload));
    Unix.sleepf (float_of_int (rand_int 10) /. 1000.);
    kill_server pid;
    (* the transport reports the crash; nothing definitive happened, so
       a retrying client would resend — which verify_history emulates *)
    (match Unix.read fd (Bytes.create 1) 0 1 with
    | 0 -> ()
    | _ -> fail "reply arrived for a request killed mid-flight"
    | exception Unix.Unix_error _ -> ());
    Unix.close fd;
    C.close conn;
    (* 4. sometimes rot the journal before the next incarnation *)
    if rand_int 3 = 0 then begin
      match corrupt_journal () with
      | `Untouched -> ()
      | `Truncated cut ->
          incr corruptions;
          Printf.printf "chaos: cycle %d truncated journal at byte %d\n%!"
            cycle cut
      | `Flipped pos ->
          incr corruptions;
          Printf.printf "chaos: cycle %d flipped a bit at byte %d\n%!" cycle
            pos
    end
  done;
  (* final incarnation: full history replay, then a clean shutdown *)
  let pid = start_server () in
  let conn = connect_with_patience () in
  verify_history conn;
  graceful_shutdown conn pid;
  if not (log_contains "\"event\":\"serve.restore\"") then
    fail "no serve.restore line in %s" log_path;
  Printf.printf
    "chaos: OK — %d cycles, %d replies held byte-identical across %d kills (%d journal corruptions)\n%!"
    cycles
    (List.length !recorded)
    cycles !corruptions;
  (* leave nothing behind on success *)
  List.iter
    (fun f -> try Unix.unlink (Filename.concat dir f) with Unix.Unix_error _ -> ())
    [ "state.ccsj"; "state.ccsj.tmp"; "server.log"; "chaos.sock" ];
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())
