(* Portfolio compaction: the diversification schedule, the
   (length, signature, index) result rule, invariance of the winner in
   the domain count and the pruning flag, the pruning counters, the
   autotune signature tie-break, and byte-identity of the sharded
   exhaustive solver.  These pin the determinism contract the bench
   regression gate relies on. *)

module Csdfg = Dataflow.Csdfg
module Schedule = Cyclo.Schedule
module Comm = Cyclo.Comm
module Compaction = Cyclo.Compaction
module Portfolio = Cyclo.Portfolio
module Autotune = Cyclo.Autotune
module Exhaustive = Cyclo.Exhaustive
module Remap = Cyclo.Remap

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let sig_of r = Schedule.signature (Portfolio.best r)

let bench_cells =
  [
    ("elliptic/linear8", Workloads.Filters.elliptic, Topology.linear_array 8);
    ( "elliptic/mesh4x4",
      Workloads.Filters.elliptic,
      Topology.mesh ~rows:4 ~cols:4 );
    ("lms4/linear8", Workloads.Kernels.lms ~taps:4, Topology.linear_array 8);
    ( "lms4/mesh4x4",
      Workloads.Kernels.lms ~taps:4,
      Topology.mesh ~rows:4 ~cols:4 );
  ]

(* ------------------------------------------------------------------ *)
(* Diversification schedule                                             *)
(* ------------------------------------------------------------------ *)

let test_searches () =
  let s = Portfolio.searches ~k:9 ~lower_bound:5 in
  check_int "k entries" 9 (List.length s);
  let nth i = List.nth s i in
  check_bool "search 0 is the Compaction.run default" true
    ((nth 0).Portfolio.mode = Remap.With_relaxation
    && (nth 0).Portfolio.scoring = Remap.Pressure_first
    && (nth 0).Portfolio.order = Remap.Forward);
  check_bool "indices 0-3 cover all four (mode, scoring) pairs" true
    (List.length
       (List.sort_uniq compare
          (List.map
             (fun s -> (s.Portfolio.mode, s.Portfolio.scoring))
             (List.filteri (fun i _ -> i < 4) s)))
    = 4);
  check_bool "order flips to reverse at index 4" true
    ((nth 4).Portfolio.order = Remap.Reverse);
  check_int "target ladder sits on the lower bound for rung 0" 5
    (nth 0).Portfolio.l_target;
  check_int "target ladder rises at index 8" 6 (nth 8).Portfolio.l_target

(* ------------------------------------------------------------------ *)
(* Result rule                                                          *)
(* ------------------------------------------------------------------ *)

(* The members list must come back ranked by
   (best length, signature, search index), with the winner at its head
   — that ranking IS the determinism contract. *)
let test_result_rule () =
  let g = Workloads.Kernels.lms ~taps:4 and topo = Topology.linear_array 4 in
  let r = Portfolio.run_on ~prune:false ~domains:1 ~validate:false g topo in
  let keys =
    List.map
      (fun m ->
        let b = m.Portfolio.result.Compaction.best in
        ( Schedule.length b,
          Schedule.signature b,
          m.Portfolio.search.Portfolio.index ))
      r.Portfolio.members
  in
  check_bool "members ranked by (length, signature, index)" true
    (keys = List.sort compare keys);
  let win_len, win_sig, _ = List.hd (List.sort compare keys) in
  check_int "winner has the minimum length"
    win_len
    (Schedule.length (Portfolio.best r));
  check_string "winner carries the minimum key's signature" win_sig (sig_of r);
  (* the tie-break is exercised for real: several members tie at the
     winning length with more than one distinct schedule *)
  let at_min = List.filter (fun (l, _, _) -> l = win_len) keys in
  check_bool "at least two members tie at the winning length" true
    (List.length at_min >= 2);
  List.iter
    (fun (_, s, _) ->
      check_bool "winner signature is lexicographically minimal among ties"
        true
        (String.compare win_sig s <= 0))
    at_min

let test_k1_matches_compaction () =
  List.iter
    (fun (name, g, topo) ->
      let p = Portfolio.run_on ~k:1 ~domains:1 ~validate:false g topo in
      let c = Compaction.run_on ~validate:false g topo in
      check_string
        (name ^ ": k=1 winner is the plain Compaction.run schedule")
        (Schedule.signature c.Compaction.best)
        (sig_of p))
    bench_cells

(* ------------------------------------------------------------------ *)
(* Winner invariance: domains, pruning                                  *)
(* ------------------------------------------------------------------ *)

let test_prune_preserves_winner () =
  List.iter
    (fun (name, g, topo) ->
      let full =
        Portfolio.run_on ~prune:false ~domains:1 ~validate:false g topo
      in
      let pruned = Portfolio.run_on ~validate:false g topo in
      check_string (name ^ ": pruned winner = full winner") (sig_of full)
        (sig_of pruned))
    bench_cells

let small_params =
  { Workloads.Random_gen.default with nodes = 6; feedback_edges = 2 }

let arch_of_seed =
  let archs =
    [|
      Topology.linear_array 4;
      Topology.ring 4;
      Topology.mesh ~rows:2 ~cols:2;
      Topology.complete 3;
    |]
  in
  fun seed -> archs.(abs seed mod Array.length archs)

let prop_domain_invariance =
  QCheck.Test.make ~count:25
    ~name:"portfolio winner is invariant in the domain count"
    QCheck.(pair (int_range 0 5_000) (int_range 0 5_000))
    (fun (gseed, aseed) ->
      let g =
        Workloads.Random_gen.generate_connected ~params:small_params
          ~seed:gseed ()
      in
      let topo = arch_of_seed aseed in
      let run d = Portfolio.run_on ~domains:d ~validate:false g topo in
      let reference = sig_of (run 1) in
      List.for_all (fun d -> String.equal reference (sig_of (run d))) [ 2; 5 ])

let prop_winner_legal_and_bounded =
  QCheck.Test.make ~count:25 ~name:"portfolio winner is legal and <= startup"
    QCheck.(int_range 0 5_000)
    (fun seed ->
      let g =
        Workloads.Random_gen.generate_connected ~params:small_params ~seed ()
      in
      let topo = arch_of_seed seed in
      let r = Portfolio.run_on ~validate:false g topo in
      Cyclo.Validator.assert_legal (Portfolio.best r);
      Schedule.length (Portfolio.best r)
      <= Schedule.length (Cyclo.Startup.run_on g topo)
      && Schedule.length (Portfolio.best r) >= r.Portfolio.lower_bound)

(* ------------------------------------------------------------------ *)
(* Pruning bookkeeping                                                  *)
(* ------------------------------------------------------------------ *)

let test_pruning_counters () =
  Obs.Counters.enable ();
  Obs.Counters.reset ();
  let r =
    Portfolio.run_on ~validate:false Workloads.Filters.elliptic
      (Topology.mesh ~rows:4 ~cols:4)
  in
  let dump = Obs.Counters.dump () in
  Obs.Counters.disable ();
  let v name = Option.value ~default:0 (List.assoc_opt name dump) in
  check_bool "some members were pruned" true
    (List.exists (fun m -> m.Portfolio.pruned) r.Portfolio.members);
  check_bool "pruned passes accumulated" true (v "portfolio.pruned_passes" > 0);
  check_int "shared-bound gauge settles on the winner length"
    (Schedule.length (Portfolio.best r))
    (v "portfolio.shared_bound");
  let kind name =
    List.find_map
      (fun (n, k, _) -> if String.equal n name then Some k else None)
      (Obs.Counters.dump_kinds ())
  in
  check_bool "shared_bound registered as a gauge" true
    (kind "portfolio.shared_bound" = Some Obs.Counters.Gauge);
  check_bool "pruned_passes registered as a counter" true
    (kind "portfolio.pruned_passes" = Some Obs.Counters.Counter);
  check_bool "compaction.best_length registered as a gauge" true
    (kind "compaction.best_length" = Some Obs.Counters.Gauge);
  (* counters register at module init, so the module must be linked
     before its names can be classified *)
  ignore Machine.Simulator.execute;
  check_bool "simulator.max_link_backlog registered as a gauge" true
    (kind "simulator.max_link_backlog" = Some Obs.Counters.Gauge)

(* ------------------------------------------------------------------ *)
(* Autotune tie-break                                                   *)
(* ------------------------------------------------------------------ *)

(* Recompute what autotune computes per configuration
   (Compaction.run + Refine.polish) and check the published winner is
   the (length, signature) minimum — on a cell where two configurations
   tie at the minimum length with distinct schedules, so the signature
   tie-break is what decides. *)
let test_autotune_signature_tiebreak () =
  let g = Workloads.Kernels.lms ~taps:4 and topo = Topology.linear_array 4 in
  let comm = Comm.of_topology topo in
  let runs =
    List.map
      (fun (mode, scoring) ->
        let p =
          Cyclo.Refine.polish
            (Compaction.run ~mode ~scoring ~validate:false g comm)
        in
        (Schedule.length p, Schedule.signature p))
      [
        (Remap.With_relaxation, Remap.Pressure_first);
        (Remap.With_relaxation, Remap.Earliest_step);
        (Remap.Without_relaxation, Remap.Pressure_first);
        (Remap.Without_relaxation, Remap.Earliest_step);
      ]
  in
  let exp_len, exp_sig = List.hd (List.sort compare runs) in
  let ties = List.filter (fun (l, _) -> l = exp_len) runs in
  check_bool "the cell really ties at the minimum length" true
    (List.length ties >= 2);
  check_bool "the tie has distinct schedules" true
    (List.length (List.sort_uniq compare (List.map snd ties)) >= 2);
  List.iter
    (fun parallel ->
      let r = Autotune.run ~parallel g comm in
      check_int "winner length is the minimum" exp_len
        r.Autotune.winner.Autotune.length;
      check_string
        (Printf.sprintf
           "winner (parallel=%b) is the lexicographically smallest signature"
           parallel)
        exp_sig
        (Schedule.signature r.Autotune.best))
    [ false; true ]

let test_autotune_budget_parallel () =
  let g = Workloads.Filters.elliptic in
  let comm = Comm.of_topology (Topology.mesh ~rows:4 ~cols:4) in
  let r = Autotune.run ~parallel:true ~time_budget:0. g comm in
  check_bool "zero budget skips later configurations" true r.Autotune.exhausted;
  check_int "the first configuration still ran to completion" 1
    (List.length r.Autotune.table);
  let r0 = Autotune.run ~parallel:false ~time_budget:0. g comm in
  check_string "same deadline semantics with and without domains"
    (Schedule.signature r0.Autotune.best)
    (Schedule.signature r.Autotune.best)

(* ------------------------------------------------------------------ *)
(* Sharded exhaustive search                                            *)
(* ------------------------------------------------------------------ *)

let test_sharded_exhaustive_byte_identical () =
  let params =
    { Workloads.Random_gen.default with nodes = 5; feedback_edges = 2 }
  in
  List.iter
    (fun seed ->
      let g = Workloads.Random_gen.generate_connected ~params ~seed () in
      List.iter
        (fun np ->
          let comm = Comm.of_topology (Topology.complete np) in
          let reference =
            match Exhaustive.solve g comm with
            | Exhaustive.Optimal s -> s
            | Exhaustive.Gave_up _ ->
                Alcotest.fail "sequential solver gave up on a tiny instance"
          in
          List.iter
            (fun shards ->
              match Exhaustive.solve ~shards ~domains:2 g comm with
              | Exhaustive.Optimal s ->
                  check_string
                    (Printf.sprintf "seed %d np %d shards %d" seed np shards)
                    (Schedule.signature reference)
                    (Schedule.signature s)
              | Exhaustive.Gave_up _ ->
                  Alcotest.fail "sharded solver gave up on a tiny instance")
            [ 2; 3; 5 ])
        [ 2; 3 ])
    [ 1; 2; 3; 4; 5 ]

let () =
  Alcotest.run "portfolio"
    [
      ( "portfolio",
        [
          Alcotest.test_case "diversification schedule" `Quick test_searches;
          Alcotest.test_case "result rule" `Quick test_result_rule;
          Alcotest.test_case "k=1 = Compaction.run" `Quick
            test_k1_matches_compaction;
          Alcotest.test_case "pruning preserves the winner" `Quick
            test_prune_preserves_winner;
          Alcotest.test_case "pruning counters" `Quick test_pruning_counters;
          QCheck_alcotest.to_alcotest prop_domain_invariance;
          QCheck_alcotest.to_alcotest prop_winner_legal_and_bounded;
        ] );
      ( "autotune",
        [
          Alcotest.test_case "signature tie-break" `Quick
            test_autotune_signature_tiebreak;
          Alcotest.test_case "shared deadline over domains" `Quick
            test_autotune_budget_parallel;
        ] );
      ( "exhaustive-shards",
        [
          Alcotest.test_case "byte-identical to sequential" `Quick
            test_sharded_exhaustive_byte_identical;
        ] );
    ]
