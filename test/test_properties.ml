(* Property-based tests (qcheck, registered via qcheck-alcotest).

   Random legal CSDFGs come from Workloads.Random_gen; random
   architectures are drawn from the standard gallery.  The key oracles:
   - the independent validator accepts every schedule the library emits;
   - the closed-form dependence rule agrees with brute-force simulation,
     including on randomly perturbed schedules;
   - the paper's theorems hold on random inputs. *)

module Csdfg = Dataflow.Csdfg
module Retiming = Dataflow.Retiming
module Schedule = Cyclo.Schedule
module Comm = Cyclo.Comm
module Startup = Cyclo.Startup
module Compaction = Cyclo.Compaction
module Remap = Cyclo.Remap
module Validator = Cyclo.Validator

let architectures =
  [|
    Topology.linear_array 4;
    Topology.ring 5;
    Topology.complete 4;
    Topology.mesh ~rows:2 ~cols:3;
    Topology.hypercube 2;
    Topology.star 4;
    Topology.binary_tree 5;
  |]

let small_params =
  { Workloads.Random_gen.default with nodes = 8; feedback_edges = 2 }

let graph_of_seed ?(params = small_params) seed =
  Workloads.Random_gen.generate_connected ~params ~seed ()

let arch_of_seed seed = architectures.(abs seed mod Array.length architectures)

let seed_arb = QCheck.int_range 0 10_000

let pair_arb = QCheck.pair seed_arb seed_arb

(* ------------------------------------------------------------------ *)
(* Generator sanity                                                     *)
(* ------------------------------------------------------------------ *)

let prop_random_graphs_legal =
  QCheck.Test.make ~count:200 ~name:"random CSDFGs are legal" seed_arb
    (fun seed -> Csdfg.is_legal (graph_of_seed seed))

(* ------------------------------------------------------------------ *)
(* Retiming properties                                                  *)
(* ------------------------------------------------------------------ *)

let cycle_delays g =
  let graph = Csdfg.graph g in
  Digraph.Cycles.elementary ~max_cycles:500 graph
  |> List.map (fun cyc ->
         Digraph.Cycles.fold_cycle_weight graph cyc ~init:0 ~f:(fun acc e ->
             acc + Csdfg.delay e))

let prop_rotation_preserves_cycle_delays =
  QCheck.Test.make ~count:100
    ~name:"rotation preserves every cycle's total delay" seed_arb (fun seed ->
      let g = graph_of_seed seed in
      (* rotate the set of nodes whose in-edges all carry delay, if any *)
      let rotatable =
        List.filter (fun v -> Retiming.can_rotate g [ v ]) (Csdfg.nodes g)
      in
      match rotatable with
      | [] -> QCheck.assume_fail ()
      | v :: _ ->
          let g' = Retiming.rotate_set g [ v ] in
          cycle_delays g = cycle_delays g')

let prop_rotation_keeps_legality =
  QCheck.Test.make ~count:100 ~name:"legal rotations keep the CSDFG legal"
    seed_arb (fun seed ->
      let g = graph_of_seed seed in
      match List.filter (fun v -> Retiming.can_rotate g [ v ]) (Csdfg.nodes g) with
      | [] -> QCheck.assume_fail ()
      | v :: _ -> Csdfg.is_legal (Retiming.rotate_set g [ v ]))

let prop_min_period_witness =
  QCheck.Test.make ~count:60
    ~name:"min_period witness is legal and achieves its period" seed_arb
    (fun seed ->
      let g = graph_of_seed seed in
      let period, r = Retiming.min_period g in
      Retiming.is_legal g r
      && Retiming.clock_period (Retiming.apply g r) <= period)

let prop_iteration_bound_methods_agree =
  QCheck.Test.make ~count:60 ~name:"exact and float iteration bounds agree"
    seed_arb (fun seed ->
      let g = graph_of_seed seed in
      match
        (Dataflow.Iteration_bound.exact g, Dataflow.Iteration_bound.approx g)
      with
      | None, None -> true
      | Some (t, d), Some approx ->
          Float.abs (approx -. (float_of_int t /. float_of_int d)) < 1e-4
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Scheduling properties                                                *)
(* ------------------------------------------------------------------ *)

let prop_startup_always_legal =
  QCheck.Test.make ~count:150 ~name:"start-up schedules pass the validator"
    pair_arb (fun (gseed, aseed) ->
      let s = Startup.run_on (graph_of_seed gseed) (arch_of_seed aseed) in
      Validator.is_legal s)

let prop_startup_matches_simulation =
  QCheck.Test.make ~count:80
    ~name:"closed-form check = simulation on start-up schedules" pair_arb
    (fun (gseed, aseed) ->
      let s = Startup.run_on (graph_of_seed gseed) (arch_of_seed aseed) in
      Validator.simulate s ~iterations:5 = Ok ())

let prop_compaction_never_worse =
  QCheck.Test.make ~count:60 ~name:"compaction best <= start-up" pair_arb
    (fun (gseed, aseed) ->
      let r =
        Compaction.run_on ~passes:12
          (graph_of_seed gseed) (arch_of_seed aseed)
      in
      Schedule.length r.Compaction.best <= Schedule.length r.Compaction.startup)

let prop_theorem_4_4 =
  QCheck.Test.make ~count:60
    ~name:"Theorem 4.4: without relaxation lengths never increase" pair_arb
    (fun (gseed, aseed) ->
      let r =
        Compaction.run_on ~mode:Remap.Without_relaxation ~passes:12
          (graph_of_seed gseed) (arch_of_seed aseed)
      in
      let rec monotone prev = function
        | [] -> true
        | e :: rest ->
            e.Compaction.length <= prev && monotone e.Compaction.length rest
      in
      monotone (Schedule.length r.Compaction.startup) r.Compaction.trace)

let prop_compaction_respects_iteration_bound =
  QCheck.Test.make ~count:60 ~name:"schedules never beat the iteration bound"
    pair_arb (fun (gseed, aseed) ->
      let g = graph_of_seed gseed in
      let r = Compaction.run_on ~passes:12 g (arch_of_seed aseed) in
      match Dataflow.Iteration_bound.exact_ceil g with
      | None -> true
      | Some bound -> Schedule.length r.Compaction.best >= bound)

let prop_every_intermediate_state_legal =
  (* Compaction.run with validate:true asserts internally; surviving the
     call is the property. *)
  QCheck.Test.make ~count:50 ~name:"every intermediate schedule is legal"
    pair_arb (fun (gseed, aseed) ->
      let r =
        Compaction.run_on ~validate:true ~passes:10
          (graph_of_seed gseed) (arch_of_seed aseed)
      in
      Validator.is_legal r.Compaction.final)

(* ------------------------------------------------------------------ *)
(* Perturbation oracle: check = simulate on arbitrary (possibly bad)    *)
(* schedules                                                            *)
(* ------------------------------------------------------------------ *)

let perturb rng s =
  (* Move one random node to a random free slot; the result may or may
     not be legal — both checkers must agree either way. *)
  let dfg = Schedule.dfg s in
  let n = Csdfg.n_nodes dfg in
  if n = 0 then s
  else begin
    let v = Random.State.int rng n in
    let s' = Schedule.unassign s v in
    let pe = Random.State.int rng (Schedule.n_processors s) in
    let cb = 1 + Random.State.int rng (Schedule.length s + 2) in
    let span = Csdfg.time dfg v in
    let cb = Schedule.first_free_slot s' ~pe ~from:cb ~span in
    Schedule.assign s' ~node:v ~cb ~pe
  end

let prop_check_equals_simulate_on_perturbed =
  QCheck.Test.make ~count:120
    ~name:"closed-form check = simulation on perturbed schedules" pair_arb
    (fun (gseed, aseed) ->
      let s = Startup.run_on (graph_of_seed gseed) (arch_of_seed aseed) in
      let rng = Random.State.make [| gseed; aseed |] in
      let s = perturb rng (perturb rng s) in
      let closed = Validator.check s = Ok () in
      let brute = Validator.simulate s ~iterations:6 = Ok () in
      closed = brute)

(* ------------------------------------------------------------------ *)
(* Transform properties                                                 *)
(* ------------------------------------------------------------------ *)

let prop_io_roundtrip =
  QCheck.Test.make ~count:100 ~name:"text format round-trips" seed_arb
    (fun seed ->
      let g = graph_of_seed seed in
      match Dataflow.Io.of_string (Dataflow.Io.to_string g) with
      | Error _ -> false
      | Ok g' -> Dataflow.Io.to_string g = Dataflow.Io.to_string g')

let prop_slowdown_legal_and_scales =
  QCheck.Test.make ~count:80 ~name:"slow-down keeps legality, scales delays"
    (QCheck.pair seed_arb (QCheck.int_range 1 4))
    (fun (seed, k) ->
      let g = graph_of_seed seed in
      let g' = Dataflow.Transform.slowdown g k in
      Csdfg.is_legal g'
      && List.for_all2
           (fun e e' -> Csdfg.delay e' = k * Csdfg.delay e)
           (Csdfg.edges g) (Csdfg.edges g'))

let prop_unfold_legal =
  QCheck.Test.make ~count:60 ~name:"unfolding keeps legality and size"
    (QCheck.pair seed_arb (QCheck.int_range 1 3))
    (fun (seed, f) ->
      let g = graph_of_seed seed in
      let g' = Dataflow.Transform.unfold g f in
      Csdfg.is_legal g'
      && Csdfg.n_nodes g' = f * Csdfg.n_nodes g
      && Csdfg.n_edges g' = f * Csdfg.n_edges g)

let prop_unfold_preserves_iteration_bound =
  (* Parhi's classical result: unfolding by f multiplies the iteration
     bound per unfolded iteration by exactly f (the rate per original
     iteration is invariant).  Checked with exact fractions. *)
  QCheck.Test.make ~count:50 ~name:"unfolding preserves the iteration bound"
    (QCheck.pair seed_arb (QCheck.int_range 1 3))
    (fun (seed, f) ->
      let g = graph_of_seed seed in
      let gu = Dataflow.Transform.unfold g f in
      match
        (Dataflow.Iteration_bound.exact g, Dataflow.Iteration_bound.exact gu)
      with
      | None, None -> true
      | Some (t, d), Some (tu, du) ->
          (* tu/du = f * t/d  <=>  tu * d = f * t * du *)
          tu * d = f * t * du
      | _ -> false)

let random_topology seed =
  (* random connected machine: a spanning tree plus random extra links *)
  let rng = Random.State.make [| seed; 0x70b0 |] in
  let n = 3 + Random.State.int rng 6 in
  let tree =
    List.init (n - 1) (fun i ->
        let child = i + 1 in
        (Random.State.int rng child, child))
  in
  let extras =
    List.concat
      (List.init n (fun a ->
           List.filteri
             (fun b _ -> b > a && Random.State.float rng 1.0 < 0.2)
             (List.init n (fun b -> b))
           |> List.map (fun b -> (a, b))))
  in
  Topology.of_links ~name:(Printf.sprintf "random-topo-%d" seed) ~n
    (tree @ extras)

let prop_random_topologies_well_formed =
  QCheck.Test.make ~count:100 ~name:"random machines: metric + route sanity"
    seed_arb
    (fun seed ->
      let t = random_topology seed in
      let n = Topology.n_processors t in
      let ok = ref true in
      for p = 0 to n - 1 do
        for q = 0 to n - 1 do
          if Topology.hops t p q <> Topology.hops t q p then ok := false;
          if p = q && Topology.hops t p q <> 0 then ok := false;
          let r = Topology.route t ~src:p ~dst:q in
          if List.length r <> Topology.hops t p q + 1 then ok := false
        done
      done;
      !ok)

let prop_scheduling_on_random_topologies =
  QCheck.Test.make ~count:60
    ~name:"cyclo-compaction stays legal on random machines" pair_arb
    (fun (gseed, tseed) ->
      let g = graph_of_seed gseed in
      let t = random_topology tseed in
      let r = Compaction.run_on ~passes:10 g t in
      Validator.is_legal r.Compaction.best)

let prop_repair_preserves_processors =
  QCheck.Test.make ~count:60 ~name:"baseline repair keeps assignments legal"
    pair_arb (fun (gseed, aseed) ->
      let g = graph_of_seed gseed in
      let topo = arch_of_seed aseed in
      let zero = Comm.zero ~n:(Topology.n_processors topo) ~name:"z" in
      let oblivious = Startup.run g zero in
      let repaired = Cyclo.Baseline.repair oblivious (Comm.of_topology topo) in
      Validator.is_legal repaired
      && List.for_all
           (fun v -> Schedule.pe oblivious v = Schedule.pe repaired v)
           (Csdfg.nodes g))

let prop_execution_meets_static_bound =
  QCheck.Test.make ~count:50
    ~name:"event-driven execution never falls behind the static schedule"
    pair_arb
    (fun (gseed, aseed) ->
      let g = graph_of_seed gseed in
      let topo = arch_of_seed aseed in
      let best =
        (Compaction.run_on ~passes:10 ~validate:false g topo).Compaction.best
      in
      let stats = Machine.Simulator.execute best topo ~iterations:8 in
      stats.Machine.Simulator.makespan
      <= Machine.Simulator.static_bound best ~iterations:8)

let prop_wormhole_execution_meets_bound =
  QCheck.Test.make ~count:40
    ~name:"wormhole schedules sustain their static periods too" pair_arb
    (fun (gseed, aseed) ->
      let g = graph_of_seed gseed in
      let topo = arch_of_seed aseed in
      let best =
        (Compaction.run ~passes:10 ~validate:false g (Comm.wormhole topo))
          .Compaction.best
      in
      let stats =
        Machine.Simulator.execute ~transport:Machine.Simulator.Wormhole best
          topo ~iterations:8
      in
      stats.Machine.Simulator.makespan
      <= Machine.Simulator.static_bound best ~iterations:8)

let prop_pipeline_coverage =
  QCheck.Test.make ~count:60
    ~name:"prologue + kernel + epilogue cover every instance exactly once"
    pair_arb
    (fun (gseed, aseed) ->
      let g = graph_of_seed gseed in
      let best =
        (Compaction.run_on ~passes:12 ~validate:false g (arch_of_seed aseed))
          .Compaction.best
      in
      match Cyclo.Pipeline.build ~original:g best with
      | Error _ -> false
      | Ok p ->
          let n = 30 in
          let nodes = Csdfg.n_nodes g in
          Cyclo.Pipeline.prologue_length p
          + (nodes * (n - p.Cyclo.Pipeline.depth))
          + Cyclo.Pipeline.epilogue_length p ~n
          = nodes * n)

let prop_autotune_gap_nonnegative =
  QCheck.Test.make ~count:25
    ~name:"autotune winners have a non-negative exact gap (tiny instances)"
    seed_arb
    (fun seed ->
      let params =
        { Workloads.Random_gen.default with nodes = 5; feedback_edges = 2 }
      in
      let g = Workloads.Random_gen.generate_connected ~params ~seed () in
      let t =
        Cyclo.Autotune.run_on ~parallel:false g (Topology.linear_array 2)
      in
      match Cyclo.Exhaustive.optimality_gap t.Cyclo.Autotune.best with
      | None -> true
      | Some gap -> gap >= 0)

let suite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "properties"
    [
      suite "generator" [ prop_random_graphs_legal ];
      suite "retiming"
        [
          prop_rotation_preserves_cycle_delays;
          prop_rotation_keeps_legality;
          prop_min_period_witness;
          prop_iteration_bound_methods_agree;
        ];
      suite "scheduling"
        [
          prop_startup_always_legal;
          prop_startup_matches_simulation;
          prop_compaction_never_worse;
          prop_theorem_4_4;
          prop_compaction_respects_iteration_bound;
          prop_every_intermediate_state_legal;
        ];
      suite "oracle" [ prop_check_equals_simulate_on_perturbed ];
      suite "transform"
        [
          prop_io_roundtrip;
          prop_slowdown_legal_and_scales;
          prop_unfold_legal;
          prop_unfold_preserves_iteration_bound;
          prop_repair_preserves_processors;
        ];
      suite "random-machines"
        [
          prop_random_topologies_well_formed;
          prop_scheduling_on_random_topologies;
        ];
      suite "execution"
        [
          prop_execution_meets_static_bound;
          prop_wormhole_execution_meets_bound;
        ];
      suite "composition"
        [ prop_pipeline_coverage; prop_autotune_gap_nonnegative ];
    ]
