(* The paper's lemmas and theorem as direct executable properties, one
   suite per claim, over seeded random CSDFGs and machines.  These
   overlap deliberately with the behavioural tests elsewhere: each test
   here states one claim of the paper in isolation. *)

module Csdfg = Dataflow.Csdfg
module Retiming = Dataflow.Retiming
module Schedule = Cyclo.Schedule
module Startup = Cyclo.Startup
module Rotation = Cyclo.Rotation
module Timing = Cyclo.Timing
module Validator = Cyclo.Validator

let architectures =
  [|
    Topology.linear_array 4;
    Topology.ring 5;
    Topology.complete 4;
    Topology.mesh ~rows:2 ~cols:3;
    Topology.hypercube 2;
  |]

let graph_of_seed seed =
  Workloads.Random_gen.generate_connected
    ~params:{ Workloads.Random_gen.default with nodes = 8; feedback_edges = 2 }
    ~seed ()

let arch_of_seed seed = architectures.(abs seed mod Array.length architectures)
let seed_arb = QCheck.int_range 0 5_000
let pair_arb = QCheck.pair seed_arb seed_arb

(* --- Lemma 4.1: rotation preserves schedule length and legality ----- *)

let lemma_4_1 =
  QCheck.Test.make ~count:120
    ~name:"Lemma 4.1: the rotated schedule has the same length and is legal"
    pair_arb
    (fun (gs, as_) ->
      let s = Startup.run_on (graph_of_seed gs) (arch_of_seed as_) in
      match Rotation.start s with
      | Error _ -> QCheck.assume_fail ()
      | Ok rot ->
          let fb = Rotation.apply_fallback rot in
          (* multi-cycle overhang may lengthen the fallback; Lemma 4.1
             proper applies when the rotated nodes are re-placed at row L
             without overhang *)
          Schedule.length fb >= Schedule.length s - 1
          && Validator.is_legal fb)

let lemma_4_1_exact_for_unit_rows =
  QCheck.Test.make ~count:120
    ~name:"Lemma 4.1 (exact): unit-time first rows keep the length equal"
    pair_arb
    (fun (gs, as_) ->
      let g = graph_of_seed gs in
      let s = Startup.run_on g (arch_of_seed as_) in
      let unit_row =
        List.for_all (fun v -> Csdfg.time g v = 1) (Schedule.first_row s)
      in
      if not unit_row then QCheck.assume_fail ()
      else
        match Rotation.start s with
        | Error _ -> QCheck.assume_fail ()
        | Ok rot ->
            Schedule.length (Rotation.apply_fallback rot) = Schedule.length s)

(* --- Lemma 4.2: AN is a safe earliest start --------------------------- *)

let lemma_4_2 =
  QCheck.Test.make ~count:120
    ~name:"Lemma 4.2: placing a rotated node at >= AN keeps every in-edge legal"
    pair_arb
    (fun (gs, as_) ->
      let s = Startup.run_on (graph_of_seed gs) (arch_of_seed as_) in
      match Rotation.start s with
      | Error _ -> QCheck.assume_fail ()
      | Ok rot -> (
          match rot.Rotation.rotated with
          | [] -> QCheck.assume_fail ()
          | v :: _ ->
              let base = rot.Rotation.base in
              let target = max 1 (rot.Rotation.previous_length - 1) in
              List.for_all
                (fun pe ->
                  let an =
                    Timing.earliest_start base ~node:v ~pe
                      ~target_length:target
                  in
                  let cb =
                    Schedule.first_free_slot base ~pe ~from:an
                      ~span:(Schedule.duration base ~node:v ~pe)
                  in
                  let placed = Schedule.assign base ~node:v ~cb ~pe in
                  (* every in-edge of v from an assigned producer obeys the
                     dependence rule at the target length *)
                  List.for_all
                    (fun e ->
                      let u = e.Digraph.Graph.src in
                      u = v
                      || (not (Schedule.is_assigned placed u))
                      || Schedule.cb placed v + (Csdfg.delay e * target)
                         >= Schedule.ce placed u + Timing.edge_cost placed e + 1)
                    (Csdfg.pred (Schedule.dfg placed) v))
                (List.init (Schedule.n_processors s) Fun.id)))

(* --- Lemma 4.3: PSL is exact (legal at PSL, illegal below) ----------- *)

let lemma_4_3 =
  QCheck.Test.make ~count:150
    ~name:"Lemma 4.3: required_length is the exact legality threshold"
    pair_arb
    (fun (gs, as_) ->
      let s = Startup.run_on (graph_of_seed gs) (arch_of_seed as_) in
      let needed = Timing.required_length s in
      let at_needed = Schedule.set_length s needed in
      let legal_at = Validator.is_legal at_needed in
      let tight =
        (* shrinking below the threshold must break legality whenever the
           threshold exceeds the occupied rows (otherwise set_length
           refuses, which is the rows binding instead) *)
        if needed > Schedule.rows_needed s then begin
          let below = Schedule.set_length s (needed - 1) in
          not (Validator.is_legal below)
        end
        else true
      in
      legal_at && tight)

(* --- Theorem 4.4: monotone without relaxation, either scoring --------- *)

let theorem_4_4 scoring name =
  QCheck.Test.make ~count:80 ~name pair_arb (fun (gs, as_) ->
      let r =
        Cyclo.Compaction.run_on ~mode:Cyclo.Remap.Without_relaxation ~scoring
          ~passes:10
          (graph_of_seed gs) (arch_of_seed as_)
      in
      let rec monotone prev = function
        | [] -> true
        | e :: rest ->
            e.Cyclo.Compaction.length <= prev
            && monotone e.Cyclo.Compaction.length rest
      in
      monotone
        (Schedule.length r.Cyclo.Compaction.startup)
        r.Cyclo.Compaction.trace)

(* --- §2: retiming algebra -------------------------------------------- *)

let retiming_composition =
  QCheck.Test.make ~count:100
    ~name:"§2: composed rotations are recovered exactly by inference"
    seed_arb
    (fun seed ->
      let g = graph_of_seed seed in
      let rng = Random.State.make [| seed |] in
      (* apply up to 4 random legal single-node rotations *)
      let expected = Array.make (Csdfg.n_nodes g) 0 in
      let rec spin g k =
        if k = 0 then g
        else begin
          let candidates =
            List.filter (fun v -> Retiming.can_rotate g [ v ]) (Csdfg.nodes g)
          in
          match candidates with
          | [] -> g
          | _ ->
              let v =
                List.nth candidates
                  (Random.State.int rng (List.length candidates))
              in
              expected.(v) <- expected.(v) + 1;
              spin (Retiming.rotate_set g [ v ]) (k - 1)
        end
      in
      let g' = spin g 4 in
      match Retiming.infer ~original:g ~retimed:g' with
      | None -> false
      | Some r -> r = Retiming.normalize expected)

(* --- the io layer never crashes on junk ------------------------------- *)

let parser_total =
  QCheck.Test.make ~count:300
    ~name:"Io.of_string is total: junk yields Error, never an exception"
    QCheck.(string_of_size (QCheck.Gen.int_range 0 200))
    (fun junk ->
      match Dataflow.Io.of_string junk with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let suite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "paper-invariants"
    [
      suite "lemma-4.1" [ lemma_4_1; lemma_4_1_exact_for_unit_rows ];
      suite "lemma-4.2" [ lemma_4_2 ];
      suite "lemma-4.3" [ lemma_4_3 ];
      suite "theorem-4.4"
        [
          theorem_4_4 Cyclo.Remap.Pressure_first
            "Theorem 4.4 under pressure-first scoring";
          theorem_4_4 Cyclo.Remap.Earliest_step
            "Theorem 4.4 under earliest-step scoring";
        ];
      suite "retiming" [ retiming_composition ];
      suite "totality" [ parser_total ];
    ]
