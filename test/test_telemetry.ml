(* Tests for the live-telemetry surface: golden byte-exact Prometheus
   exposition, parse/render agreement under random histogram loads, the
   strict parser's rejections, the monotone delta view, and the
   ccsched-log/1 NDJSON schema round-trip. *)

module E = Obs.Exposition

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* {2 Golden exposition} *)

let golden_counters =
  [
    ("service.cache_hits", Obs.Counters.Counter, 3);
    ("service.queue_depth", Obs.Counters.Gauge, 2);
  ]

let golden_histograms =
  [
    ( "service.request_latency",
      {
        Obs.Histogram.s_count = 4;
        s_sum = 17;
        s_buckets = [ (3, 1); (7, 2); (15, 1) ];
      } );
  ]

let golden_text =
  String.concat "\n"
    [
      "# HELP ccsched_service_cache_hits registry cell service.cache_hits";
      "# TYPE ccsched_service_cache_hits counter";
      "ccsched_service_cache_hits 3";
      "# HELP ccsched_service_queue_depth registry cell service.queue_depth";
      "# TYPE ccsched_service_queue_depth gauge";
      "ccsched_service_queue_depth 2";
      "# HELP ccsched_service_request_latency registry histogram \
       service.request_latency (log2 buckets)";
      "# TYPE ccsched_service_request_latency histogram";
      "ccsched_service_request_latency_bucket{le=\"3\"} 1";
      "ccsched_service_request_latency_bucket{le=\"7\"} 3";
      "ccsched_service_request_latency_bucket{le=\"15\"} 4";
      "ccsched_service_request_latency_bucket{le=\"+Inf\"} 4";
      "ccsched_service_request_latency_sum 17";
      "ccsched_service_request_latency_count 4";
      "";
    ]

let test_golden_render () =
  check_str "byte-exact exposition" golden_text
    (E.render_of ~counters:golden_counters ~histograms:golden_histograms ())

let test_golden_parses_back () =
  match E.parse golden_text with
  | Error m -> Alcotest.fail ("parser rejected its own renderer: " ^ m)
  | Ok fams ->
      check "three families" 3 (List.length fams);
      (match E.find fams "ccsched_service_cache_hits" with
      | Some f ->
          check_bool "counter kind" true (f.E.fam_kind = E.Counter);
          Alcotest.(check (option (float 0.)))
            "counter value" (Some 3.)
            (E.value fams "ccsched_service_cache_hits")
      | None -> Alcotest.fail "cache_hits family missing");
      (match E.find fams "ccsched_service_queue_depth" with
      | Some f -> check_bool "gauge kind" true (f.E.fam_kind = E.Gauge)
      | None -> Alcotest.fail "queue_depth family missing");
      match E.find fams "ccsched_service_request_latency" with
      | Some f ->
          check_bool "histogram kind" true (f.E.fam_kind = E.Histogram);
          Alcotest.(check (option (float 0.)))
            "p50 from cumulative buckets" (Some 7.)
            (E.histogram_quantile f 0.5);
          Alcotest.(check (option (float 0.)))
            "p100 lands on the last finite bucket" (Some 15.)
            (E.histogram_quantile f 1.0)
      | None -> Alcotest.fail "latency family missing"

let test_metric_name () =
  check_str "dots become underscores" "ccsched_service_cache_hits"
    (E.metric_name "service.cache_hits");
  check_str "every illegal char is mapped" "ccsched_a_b_c_1"
    (E.metric_name "a.b-c 1")

(* {2 Render/parse agreement under random loads} *)

let h_prop = Obs.Histogram.histogram "telemetry.prop"

let prop_render_parse_agree =
  QCheck.Test.make ~count:100
    ~name:"rendered registry scrapes parse, cumulative, +Inf == _count"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 40) (int_bound 1_000_000))
    (fun values ->
      Obs.Histogram.enable ();
      (* enable resets, so each iteration starts from zero *)
      List.iter (Obs.Histogram.observe h_prop) values;
      let text = E.render () in
      Obs.Histogram.disable ();
      match E.parse text with
      | Error m -> QCheck.Test.fail_reportf "parse rejected render: %s" m
      | Ok fams -> (
          let name = E.metric_name "telemetry.prop" in
          match E.find fams name with
          | None -> QCheck.Test.fail_reportf "histogram family missing"
          | Some fam ->
              let sample suffix =
                match
                  List.find_opt
                    (fun s -> s.E.sample_name = name ^ suffix)
                    fam.E.fam_samples
                with
                | Some s -> s.E.value
                | None -> QCheck.Test.fail_reportf "missing %s%s" name suffix
              in
              sample "_count" = float_of_int (List.length values)
              && sample "_sum"
                 = float_of_int (List.fold_left (fun a v -> a + max 0 v) 0 values)))

(* {2 Strict parser rejections} *)

let test_parser_rejections () =
  let expect_reject what text =
    match E.parse text with
    | Ok _ -> Alcotest.fail (what ^ ": should have been rejected")
    | Error _ -> ()
  in
  expect_reject "sample before TYPE" "ccsched_x 1\n";
  expect_reject "duplicate family"
    "# TYPE ccsched_x counter\nccsched_x 1\n# TYPE ccsched_x counter\n\
     ccsched_x 2\n";
  expect_reject "HELP not followed by its TYPE"
    "# HELP ccsched_x something\nccsched_x 1\n";
  expect_reject "unsorted le buckets"
    "# TYPE ccsched_h histogram\nccsched_h_bucket{le=\"7\"} 1\n\
     ccsched_h_bucket{le=\"3\"} 2\nccsched_h_bucket{le=\"+Inf\"} 2\n\
     ccsched_h_sum 5\nccsched_h_count 2\n";
  expect_reject "non-cumulative buckets"
    "# TYPE ccsched_h histogram\nccsched_h_bucket{le=\"3\"} 2\n\
     ccsched_h_bucket{le=\"7\"} 1\nccsched_h_bucket{le=\"+Inf\"} 1\n\
     ccsched_h_sum 5\nccsched_h_count 1\n";
  expect_reject "+Inf bucket missing"
    "# TYPE ccsched_h histogram\nccsched_h_bucket{le=\"3\"} 1\n\
     ccsched_h_sum 1\nccsched_h_count 1\n";
  expect_reject "+Inf disagrees with _count"
    "# TYPE ccsched_h histogram\nccsched_h_bucket{le=\"3\"} 1\n\
     ccsched_h_bucket{le=\"+Inf\"} 1\nccsched_h_sum 1\nccsched_h_count 2\n";
  expect_reject "counter with two samples"
    "# TYPE ccsched_x counter\nccsched_x 1\nccsched_x 2\n";
  match
    E.parse "# TYPE ccsched_x counter\nccsched_x 1\n"
  with
  | Ok [ { E.fam_name = "ccsched_x"; _ } ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "minimal valid scrape should parse"

(* {2 Monotone delta view} *)

let test_delta_view () =
  let render hits depth count =
    E.render_of
      ~counters:
        [
          ("service.cache_hits", Obs.Counters.Counter, hits);
          ("service.queue_depth", Obs.Counters.Gauge, depth);
        ]
      ~histograms:
        [
          ( "service.request_latency",
            {
              Obs.Histogram.s_count = count;
              s_sum = count * 5;
              s_buckets = [ (7, count) ];
            } );
        ]
      ()
  in
  let prev = Result.get_ok (E.parse (render 10 4 2)) in
  let cur = Result.get_ok (E.parse (render 25 3 6)) in
  let d = E.delta ~prev cur in
  Alcotest.(check (option (float 0.)))
    "counter delta" (Some 15.)
    (E.value d "ccsched_service_cache_hits");
  Alcotest.(check (option (float 0.)))
    "gauge passes through" (Some 3.)
    (E.value d "ccsched_service_queue_depth");
  (match E.find d "ccsched_service_request_latency" with
  | Some fam ->
      Alcotest.(check (option (float 0.)))
        "quantile over the delta window" (Some 7.)
        (E.histogram_quantile fam 0.5)
  | None -> Alcotest.fail "latency family missing from delta");
  (* deltas never go negative, even across a counter reset *)
  let d2 = E.delta ~prev:cur prev in
  Alcotest.(check (option (float 0.)))
    "reset clamps to zero" (Some 0.)
    (E.value d2 "ccsched_service_cache_hits");
  (* ... histograms clamp the same way, and the clamped result is
     still a well-formed cumulative vector ... *)
  (match E.find d2 "ccsched_service_request_latency" with
  | Some fam ->
      List.iter
        (fun s ->
          Alcotest.(check bool)
            ("histogram reset clamps " ^ s.E.sample_name)
            true (s.E.value = 0.))
        fam.E.fam_samples
  | None -> Alcotest.fail "latency family missing across the reset");
  (* ... while gauges are instantaneous readings: a gauge that dropped
     (an RSS release, a drained queue) passes through as its raw
     current value instead of being clamped *)
  Alcotest.(check (option (float 0.)))
    "falling gauge passes through across the reset" (Some 4.)
    (E.value d2 "ccsched_service_queue_depth")

(* {2 ccsched-log/1 round-trip} *)

let test_log_round_trip () =
  let line =
    Obs.Log.render ~ts_ns:123456789 ~level:Obs.Log.Warn
      ~event:"sch\"edu\nle" ~request_id:7 ~session:"abc" ~duration_ns:99
      ~kv:
        [
          ("cached", Obs.Log.B true);
          ("length", Obs.Log.I 42);
          ("ratio", Obs.Log.F 0.5);
          ("note", Obs.Log.S "tab\there");
        ]
      ()
  in
  check_bool "one line" true (not (String.contains line '\n'));
  match Obs.Json.parse line with
  | Error m -> Alcotest.fail ("log line is not valid JSON: " ^ m)
  | Ok json ->
      let str name = Option.bind (Obs.Json.member name json) Obs.Json.to_str in
      let int name = Option.bind (Obs.Json.member name json) Obs.Json.to_int in
      Alcotest.(check (option string)) "schema" (Some Obs.Log.schema) (str "log");
      Alcotest.(check (option int)) "ts_ns" (Some 123456789) (int "ts_ns");
      Alcotest.(check (option string)) "level" (Some "warn") (str "level");
      Alcotest.(check (option string))
        "event with escapes" (Some "sch\"edu\nle") (str "event");
      Alcotest.(check (option int)) "request_id" (Some 7) (int "request_id");
      Alcotest.(check (option string)) "session" (Some "abc") (str "session");
      Alcotest.(check (option int)) "duration_ns" (Some 99) (int "duration_ns");
      Alcotest.(check (option int)) "int kv" (Some 42) (int "length");
      Alcotest.(check (option string))
        "string kv with tab" (Some "tab\there") (str "note");
      check_bool "bool kv" true
        (Obs.Json.member "cached" json = Some (Obs.Json.Bool true));
      Alcotest.(check (option (float 0.)))
        "float kv" (Some 0.5)
        (Option.bind (Obs.Json.member "ratio" json) Obs.Json.to_num)

let test_log_threshold_and_sink () =
  let buf = Buffer.create 256 in
  Obs.Log.enable ~level:Obs.Log.Warn (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n');
  check_bool "info below threshold" false (Obs.Log.would_log Obs.Log.Info);
  Obs.Log.emit ~kv:[ ("dropped", Obs.Log.B true) ] Obs.Log.Info "quiet";
  Obs.Log.emit ~request_id:3 Obs.Log.Error "loud";
  Obs.Log.disable ();
  Obs.Log.emit Obs.Log.Error "after-disable";
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check "exactly the one eligible line" 1 (List.length lines);
  match Obs.Json.parse (List.hd lines) with
  | Ok json ->
      Alcotest.(check (option string))
        "event" (Some "loud")
        (Option.bind (Obs.Json.member "event" json) Obs.Json.to_str);
      check_bool "monotonic timestamp present" true
        (Option.bind (Obs.Json.member "ts_ns" json) Obs.Json.to_int <> None)
  | Error m -> Alcotest.fail ("emitted line is not valid JSON: " ^ m)

(* {2 Registry snapshots} *)

let test_registry_snapshots () =
  Obs.Counters.enable ();
  let c = Obs.Counters.counter "telemetry.snap_counter" in
  let g = Obs.Counters.gauge "telemetry.snap_gauge" in
  Obs.Counters.incr ~by:3 c;
  Obs.Counters.set g 9;
  let snap = Obs.Counters.snapshot () in
  Obs.Counters.disable ();
  check_bool "counter kind and value" true
    (List.mem ("telemetry.snap_counter", Obs.Counters.Counter, 3) snap);
  check_bool "gauge kind and value" true
    (List.mem ("telemetry.snap_gauge", Obs.Counters.Gauge, 9) snap);
  check_bool "snapshot is sorted" true
    (List.sort compare snap = snap);
  Obs.Histogram.enable ();
  let h = Obs.Histogram.histogram "telemetry.snap_hist" in
  List.iter (Obs.Histogram.observe h) [ 1; 2; 100 ];
  let s = Obs.Histogram.snap h in
  Obs.Histogram.disable ();
  check "snapshot count" 3 s.Obs.Histogram.s_count;
  check "snapshot sum" 103 s.Obs.Histogram.s_sum;
  check "count equals bucket total" 3
    (List.fold_left (fun a (_, c) -> a + c) 0 s.Obs.Histogram.s_buckets)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "telemetry"
    [
      ( "exposition",
        [
          Alcotest.test_case "golden render" `Quick test_golden_render;
          Alcotest.test_case "golden parses back" `Quick
            test_golden_parses_back;
          Alcotest.test_case "metric names" `Quick test_metric_name;
          q prop_render_parse_agree;
          Alcotest.test_case "strict rejections" `Quick
            test_parser_rejections;
          Alcotest.test_case "delta view" `Quick test_delta_view;
        ] );
      ( "log",
        [
          Alcotest.test_case "schema round-trip" `Quick test_log_round_trip;
          Alcotest.test_case "threshold and sink" `Quick
            test_log_threshold_and_sink;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "counters and histograms" `Quick
            test_registry_snapshots;
        ] );
    ]
