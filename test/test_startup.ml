(* Tests for the start-up (communication-aware list) scheduler, including
   an exact reproduction of the paper's Figure 6(b). *)

module Csdfg = Dataflow.Csdfg
module Schedule = Cyclo.Schedule
module Comm = Cyclo.Comm
module Startup = Cyclo.Startup
module Validator = Cyclo.Validator
module Priority = Cyclo.Priority

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fig1b = Workloads.Examples.fig1b

let paper_mesh () =
  Topology.relabel (Topology.mesh ~rows:2 ~cols:2)
    Workloads.Examples.fig1_mesh_permutation

let node g l = Csdfg.node_of_label g l

(* ------------------------------------------------------------------ *)
(* Figure 6(b): the paper's initial schedule, cell by cell              *)
(* ------------------------------------------------------------------ *)

let test_fig6b_exact () =
  let s = Startup.run_on fig1b (paper_mesh ()) in
  let expect l cb pe =
    check (l ^ " cb") cb (Schedule.cb s (node fig1b l));
    check (l ^ " pe") pe (Schedule.pe s (node fig1b l))
  in
  check "length 7" 7 (Schedule.length s);
  expect "A" 1 0;
  expect "B" 2 0;
  expect "C" 3 1;
  (* C deferred to cs3 on PE2 by the A->C communication *)
  expect "D" 4 0;
  expect "E" 5 0;
  expect "F" 7 0

let test_fig6b_valid () =
  let s = Startup.run_on fig1b (paper_mesh ()) in
  check_bool "validator" true (Validator.is_legal s);
  check_bool "simulation" true (Validator.simulate s ~iterations:6 = Ok ())

(* ------------------------------------------------------------------ *)
(* Priority function behaviour (Definition 3.6)                         *)
(* ------------------------------------------------------------------ *)

let test_pf_prefers_critical_node () =
  (* At cs2 with A scheduled, B (mobility 0) outranks C (mobility 1). *)
  let pr = Priority.create fig1b in
  let s =
    Schedule.assign
      (Schedule.empty fig1b (Comm.of_topology (paper_mesh ())))
      ~node:(node fig1b "A") ~cb:1 ~pe:0
  in
  let pf_b = Priority.pf pr s ~cs:2 (node fig1b "B") in
  let pf_c = Priority.pf pr s ~cs:2 (node fig1b "C") in
  check "PF(B)" 1 pf_b;
  check "PF(C)" 0 pf_c;
  Alcotest.(check (list int)) "sorted"
    [ node fig1b "B"; node fig1b "C" ]
    (Priority.sort_ready pr s ~cs:2 [ node fig1b "C"; node fig1b "B" ])

let test_pf_rises_with_waiting_time () =
  (* The longer a producer has been finished, the more volume boosts the
     consumer... the (cs - CE - 1) term *reduces* PF as time passes. *)
  let pr = Priority.create fig1b in
  let s =
    Schedule.assign
      (Schedule.empty fig1b (Comm.of_topology (paper_mesh ())))
      ~node:(node fig1b "A") ~cb:1 ~pe:0
  in
  let at cs = Priority.pf pr s ~cs (node fig1b "C") in
  check_bool "later steps lower priority" true (at 4 < at 2)

let test_pf_root_is_negative_mobility () =
  let pr = Priority.create fig1b in
  let s = Schedule.empty fig1b (Comm.of_topology (paper_mesh ())) in
  check "root A" 0 (Priority.pf pr s ~cs:1 (node fig1b "A"))

(* The sweep keeps its ready queue sorted by Priority.sort_key instead
   of re-sorting with sort_ready every control step; the two must induce
   the same order for every strategy, schedule state and step. *)
let test_sort_key_matches_sort_ready =
  QCheck.Test.make ~count:100 ~name:"sort_key order = sort_ready order"
    QCheck.(triple (0 -- 49) (1 -- 30) (0 -- 100))
    (fun (seed, cs, keep) ->
      let g = Workloads.Random_gen.generate ~seed () in
      let full = Startup.run_on g (Topology.linear_array 3) in
      (* unassign a suffix so ready nodes see a mix of assigned and
         unassigned zero-delay predecessors *)
      let nodes = Csdfg.nodes g in
      let cut = keep mod (List.length nodes + 1) in
      let s =
        Schedule.unassign_all full
          (List.filteri (fun i _ -> i >= cut) nodes)
      in
      let pr = Priority.create g in
      let ready = List.filter (fun v -> not (Schedule.is_assigned s v)) nodes in
      List.for_all
        (fun strategy ->
          let score v =
            match Priority.sort_key strategy pr s v with
            | Priority.Affine k -> k - cs
            | Priority.Const k -> k
          in
          let keyed =
            List.stable_sort
              (fun a b ->
                match compare (score b) (score a) with
                | 0 -> compare a b
                | c -> c)
              ready
          in
          keyed = Priority.sort_ready ~strategy pr s ~cs ready)
        [ Priority.Pf; Priority.Static_level; Priority.Mobility_only;
          Priority.Fifo ])

(* ------------------------------------------------------------------ *)
(* Behaviour across communication regimes                               *)
(* ------------------------------------------------------------------ *)

let test_zero_comm_parallelizes () =
  (* Without communication costs C runs in parallel with B, giving the
     critical-path-length schedule (6). *)
  let s = Startup.run fig1b (Comm.zero ~n:4 ~name:"z") in
  check "length = critical path" 6 (Schedule.length s);
  check_bool "C in parallel with B" true
    (Schedule.cb s (node fig1b "C") <= 3);
  check_bool "valid" true (Validator.is_legal s)

let test_single_processor_is_sequential () =
  let s = Startup.run_on fig1b (Topology.linear_array 1) in
  check "length = total time" (Csdfg.total_time fig1b) (Schedule.length s);
  check_bool "valid" true (Validator.is_legal s)

let test_more_processors_never_worse_on_complete () =
  let len n = Schedule.length (Startup.run_on fig1b (Topology.complete n)) in
  check_bool "2 <= 1" true (len 2 <= len 1);
  check_bool "4 <= 2" true (len 4 <= len 2)

let test_expensive_comm_keeps_one_processor () =
  (* When every hop costs a lot, the scheduler should not spread work. *)
  let comm = Comm.scaled (Topology.complete 4) ~factor:50 in
  let s = Startup.run fig1b comm in
  check "degenerates to sequential" (Csdfg.total_time fig1b)
    (Schedule.length s);
  check "one processor" 1 (Cyclo.Metrics.processors_used s)

let test_psl_padding () =
  (* two-chains on 2 processors: each chain fits its own processor; the
     feedback edges are same-processor so no padding is needed — but on a
     schedule where a delayed edge crosses processors the length grows.
     Use the correlator whose acc1 -> x edge crosses. *)
  let g = Workloads.Examples.two_independent_chains in
  let s = Startup.run_on g (Topology.linear_array 2) in
  check_bool "legal with PSL padding" true (Validator.is_legal s);
  check_bool "length >= rows" true
    (Schedule.length s >= Schedule.rows_needed s)

let test_illegal_input_rejected () =
  let bad =
    Csdfg.make ~name:"bad" ~nodes:[ ("A", 1); ("B", 1) ]
      ~edges:[ ("A", "B", 0, 1); ("B", "A", 0, 1) ]
  in
  check_bool "raises" true
    (match Startup.run_on bad (Topology.complete 2) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_all_workloads_valid_everywhere () =
  let architectures =
    [
      Topology.linear_array 8;
      Topology.ring 8;
      Topology.complete 8;
      Topology.mesh ~rows:2 ~cols:4;
      Topology.hypercube 3;
    ]
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun topo ->
          let s = Startup.run_on g topo in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s" name (Topology.name topo))
            true (Validator.is_legal s))
        architectures)
    (Workloads.Suite.all ())

let test_priority_strategies_all_legal () =
  List.iter
    (fun strategy ->
      List.iter
        (fun (name, g) ->
          let s =
            Startup.run_on ~priority_strategy:strategy g (Topology.ring 4)
          in
          Alcotest.(check bool)
            (Fmt.str "%s under %a" name Priority.pp_strategy strategy)
            true (Validator.is_legal s))
        [ ("fig1b", fig1b); ("fig7", Workloads.Examples.fig7) ])
    [ Priority.Pf; Priority.Static_level; Priority.Mobility_only;
      Priority.Fifo ]

let test_static_level_values () =
  let pr = Priority.create fig1b in
  let idx l = node fig1b l in
  (* level = longest zero-delay path from the node, inclusive *)
  check "level F" 1 (Priority.static_level pr (idx "F"));
  check "level E" 3 (Priority.static_level pr (idx "E"));
  check "level A" 6 (Priority.static_level pr (idx "A"));
  check "level D" 2 (Priority.static_level pr (idx "D"))

let test_pf_default_unchanged () =
  let s1 = Startup.run_on fig1b (paper_mesh ()) in
  let s2 = Startup.run_on ~priority_strategy:Priority.Pf fig1b (paper_mesh ()) in
  check "explicit Pf = default" 0 (Schedule.compare_assignments s1 s2)

let test_deterministic () =
  let s1 = Startup.run_on fig1b (paper_mesh ()) in
  let s2 = Startup.run_on fig1b (paper_mesh ()) in
  check "same result" 0 (Schedule.compare_assignments s1 s2)

let () =
  Alcotest.run "startup"
    [
      ( "paper-fig6b",
        [
          Alcotest.test_case "exact table" `Quick test_fig6b_exact;
          Alcotest.test_case "valid" `Quick test_fig6b_valid;
        ] );
      ( "priority",
        [
          Alcotest.test_case "critical first" `Quick test_pf_prefers_critical_node;
          Alcotest.test_case "decays over time" `Quick test_pf_rises_with_waiting_time;
          Alcotest.test_case "root" `Quick test_pf_root_is_negative_mobility;
          QCheck_alcotest.to_alcotest test_sort_key_matches_sort_ready;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "zero comm" `Quick test_zero_comm_parallelizes;
          Alcotest.test_case "single processor" `Quick
            test_single_processor_is_sequential;
          Alcotest.test_case "monotone in processors" `Quick
            test_more_processors_never_worse_on_complete;
          Alcotest.test_case "expensive comm" `Quick
            test_expensive_comm_keeps_one_processor;
          Alcotest.test_case "psl padding" `Quick test_psl_padding;
          Alcotest.test_case "illegal input" `Quick test_illegal_input_rejected;
          Alcotest.test_case "all workloads x architectures" `Quick
            test_all_workloads_valid_everywhere;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "all legal" `Quick test_priority_strategies_all_legal;
          Alcotest.test_case "static levels" `Quick test_static_level_values;
          Alcotest.test_case "Pf is default" `Quick test_pf_default_unchanged;
        ] );
    ]
