(* Decision journal + Analysis: enabling the journal leaves schedules
   byte-identical to the goldens; the fig7 / mesh-2x4 startup journal
   contains the hand-computed communication-bound rejection (node D
   refused pe2 at step 2 because A's volume-2 message needs
   1 hop x 2 = 2 steps on the wire); Placed events agree with the
   startup table; and the report invariants hold (traffic conservation
   across links, utilization, binding-constraint attribution). *)

module Csdfg = Dataflow.Csdfg
module Journal = Obs.Journal
module Analysis = Cyclo.Analysis
module Schedule = Cyclo.Schedule
module Comm = Cyclo.Comm
module Compaction = Cyclo.Compaction
module Timing = Cyclo.Timing
module G = Digraph.Graph

(* Golden signatures from test_golden_signatures.ml. *)
let fig7_mesh2x4_startup =
  "13;1@0;2@0;3@1;4@4;6@5;5@4;4@0;3@0;6@0;7@4;7@0;9@4;7@5;8@0;9@0;10@0;11@4;8@5;13@4"

let fig7_mesh2x4_best =
  "6;1@0;3@4;3@1;4@4;5@4;1@5;2@2;6@1;3@2;3@5;4@2;5@5;6@4;5@2;2@0;3@0;2@1;1@4;5@0"

let fig7 () =
  match Dataflow.Io.read_file ~path:"../data/fig7.csdfg" with
  | Ok g -> g
  | Error e -> Alcotest.fail (Dataflow.Io.error_to_string e)

let mesh2x4 () = Topology.mesh ~rows:2 ~cols:4

(* Node ids in fig7: A=0 B=1 C=2 D=3 ... (declaration order). *)
let node_d = 3

let journaled_run () =
  Journal.enable ();
  let r = Compaction.run_on ~validate:false (fig7 ()) (mesh2x4 ()) in
  Journal.disable ();
  let events = Journal.events () in
  Journal.reset ();
  (r, events)

let test_byte_identical_with_journal () =
  let r, events = journaled_run () in
  Alcotest.(check string)
    "startup signature unchanged by the journal" fig7_mesh2x4_startup
    (Schedule.signature r.Compaction.startup);
  Alcotest.(check string)
    "best signature unchanged by the journal" fig7_mesh2x4_best
    (Schedule.signature r.Compaction.best);
  Alcotest.(check bool) "journal captured events" true (events <> [])

let test_comm_bound_hand_computed () =
  let _, events = journaled_run () in
  (* D becomes ready at step 2 (A runs at step 1 on pe1).  On any other
     processor A's volume-2 message is still on the wire: for pe2 (one
     mesh hop away) the store-and-forward cost is 1 hop x volume 2 = 2
     steps, so the journal must carry exactly that rejection. *)
  let expected_cost =
    Comm.cost (Comm.of_topology (mesh2x4 ())) ~src:0 ~dst:1 ~volume:2
  in
  Alcotest.(check int) "hand-computed store-and-forward cost" 2 expected_cost;
  let found =
    List.exists
      (function
        | Journal.Candidate
            {
              node;
              cs = 2;
              pe = 1;
              reason = Journal.Comm_bound { pred = 0; hops; volume };
            } ->
            node = node_d && hops * volume = expected_cost
        | _ -> false)
      events
  in
  Alcotest.(check bool) "D rejected on pe2 at step 2: comm-bound by A" true
    found;
  (* same step, pe1: the slot was free but B (sorted ahead by PF) took
     it — a pure tie-break loss *)
  let tiebreak =
    List.exists
      (function
        | Journal.Candidate
            { node; cs = 2; pe = 0; reason = Journal.Mobility { winner = 1 } }
          ->
            node = node_d
        | _ -> false)
      events
  in
  Alcotest.(check bool) "D lost pe1 at step 2 to B" true tiebreak;
  (* step 4, pe2: C (a two-cycle node placed at step 3) still runs *)
  let occupied =
    List.exists
      (function
        | Journal.Candidate
            { node; cs = 4; pe = 1; reason = Journal.Occupied { holder = 2 } }
          ->
            node = node_d
        | _ -> false)
      events
  in
  Alcotest.(check bool) "D found pe2 occupied by C at step 4" true occupied

let test_placed_events_match_startup () =
  let r, events = journaled_run () in
  let startup = r.Compaction.startup in
  let placed =
    List.filter_map
      (function
        | Journal.Placed { node; cs; pe; arrival; _ } ->
            Some (node, cs, pe, arrival)
        | _ -> None)
      events
  in
  Alcotest.(check int) "one Placed event per node"
    (Csdfg.n_nodes (fig7 ()))
    (List.length placed);
  List.iter
    (fun (node, cs, pe, arrival) ->
      Alcotest.(check int) "Placed.cs is the startup CB"
        (Schedule.cb startup node) cs;
      Alcotest.(check int) "Placed.pe is the startup PE"
        (Schedule.pe startup node) pe;
      Alcotest.(check bool) "placed strictly after its data arrived" true
        (arrival < cs))
    placed

let test_report_invariants () =
  let r, events = journaled_run () in
  let best = r.Compaction.best in
  let topo = mesh2x4 () in
  let rep = Analysis.report ~topo ~journal:events ~k:5 best in
  Alcotest.(check int) "length" 6 rep.Analysis.length;
  Alcotest.(check (option int)) "iteration bound" (Some 4) rep.Analysis.bound;
  Alcotest.(check (option int)) "gap" (Some 2) rep.Analysis.gap;
  (* store-and-forward conservation: total routed link volume equals
     hops x volume summed over cross edges, i.e. the comm cost *)
  (match rep.Analysis.links with
  | None -> Alcotest.fail "report built with ~topo must carry link traffic"
  | Some links ->
      let total = List.fold_left (fun acc (_, v) -> acc + v) 0 links in
      Alcotest.(check int) "link volumes sum to the comm cost"
        rep.Analysis.comm_cost total;
      List.iter
        (fun ((a, b), v) ->
          Alcotest.(check bool) "traffic only on physical links" true
            (Topology.hops topo a b = 1);
          Alcotest.(check bool) "positive volume" true (v > 0))
        links);
  (* the traffic matrix holds every cross edge's volume exactly once *)
  let g = Schedule.dfg best in
  let expected_volume =
    List.fold_left
      (fun acc (e : Csdfg.attr G.edge) ->
        if Schedule.pe best e.G.src <> Schedule.pe best e.G.dst then
          acc + Csdfg.volume e
        else acc)
      0 (Csdfg.edges g)
  in
  let matrix_total =
    Array.fold_left (Array.fold_left ( + )) 0 rep.Analysis.traffic
  in
  Alcotest.(check int) "traffic matrix total" expected_volume matrix_total;
  (* per-PE occupancy covers exactly the nodes' durations *)
  let busy_total =
    List.fold_left (fun acc u -> acc + u.Analysis.busy) 0 rep.Analysis.per_pe
  in
  let duration_total =
    List.fold_left
      (fun acc v ->
        acc + Schedule.duration best ~node:v ~pe:(Schedule.pe best v))
      0 (Csdfg.nodes g)
  in
  Alcotest.(check int) "busy cells = sum of durations" duration_total
    busy_total;
  List.iter
    (fun u ->
      Alcotest.(check int) "timeline spans the table" rep.Analysis.length
        (String.length u.Analysis.timeline);
      Alcotest.(check int) "busy = # marks in the timeline" u.Analysis.busy
        (String.fold_left
           (fun acc c -> if c = '#' then acc + 1 else acc)
           0 u.Analysis.timeline))
    rep.Analysis.per_pe;
  (* binding attribution agrees with Timing.required_length *)
  (match rep.Analysis.binding with
  | Analysis.Rows { last } ->
      Alcotest.(check int) "Rows binding = required length"
        (Timing.required_length best) last
  | Analysis.Delayed_edge { psl; _ } ->
      Alcotest.(check int) "edge PSL = required length"
        (Timing.required_length best) psl);
  (* fig7's best schedule is pinned by a delayed edge at PSL 6 *)
  (match rep.Analysis.binding with
  | Analysis.Delayed_edge { psl = 6; _ } -> ()
  | b ->
      Alcotest.failf "expected a PSL-6 delayed-edge binding, got %a"
        (Obs.Journal.pp_binding ?label:None)
        b);
  Alcotest.(check bool) "journal yields blocking nodes" true
    (rep.Analysis.blocking_nodes <> []);
  List.iter
    (fun b ->
      Alcotest.(check int) "rejection tallies add up" b.Analysis.rejections
        (b.Analysis.comm_bound + b.Analysis.occupied + b.Analysis.tiebreak))
    rep.Analysis.blocking_nodes

let test_explain () =
  let r, events = journaled_run () in
  let best = r.Compaction.best in
  let x = Analysis.explain ~journal:events best ~node:node_d in
  (match x.Analysis.placed with
  | Some (Journal.Placed { cs = 4; pe = 4; _ }) -> ()
  | _ -> Alcotest.fail "D's startup Placed event missing or wrong");
  let comm_bound_rejections =
    List.filter
      (function
        | Journal.Candidate { reason = Journal.Comm_bound _; _ } -> true
        | _ -> false)
      x.Analysis.rejected
  in
  Alcotest.(check bool) "at least one comm-bound rejection" true
    (comm_bound_rejections <> []);
  (match x.Analysis.entry with
  | Some { Schedule.cb = 4; pe = 4 } -> ()
  | _ -> Alcotest.fail "D's final slot should be cs 4 on pe 4 (0-based)");
  Alcotest.(check bool) "D was retimed by compaction" true
    (x.Analysis.rotations > 0);
  let rendered = Fmt.str "%a" Analysis.pp_explanation x in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "explanation mentions %S" needle)
        true
        (let ln = String.length needle and n = String.length rendered in
         let rec go i =
           i + ln <= n && (String.sub rendered i ln = needle || go (i + 1))
         in
         go 0))
    [ "node D"; "comm-bound by A"; "volume 2"; "final slot" ]

let test_explain_without_journal () =
  let r = Compaction.run_on ~validate:false (fig7 ()) (mesh2x4 ()) in
  let x = Analysis.explain r.Compaction.best ~node:node_d in
  Alcotest.(check bool) "no events" true
    (x.Analysis.placed = None && x.Analysis.rejected = []);
  (match x.Analysis.entry with
  | Some _ -> ()
  | None -> Alcotest.fail "final slot must still be reported");
  Alcotest.check_raises "out-of-range node rejected"
    (Invalid_argument "Analysis.explain: node out of range") (fun () ->
      ignore (Analysis.explain r.Compaction.best ~node:99))

let test_traffic_svg () =
  let r = Compaction.run_on ~validate:false (fig7 ()) (mesh2x4 ()) in
  let svg = Analysis.traffic_svg r.Compaction.best in
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let ends_with suffix s =
    String.length s >= String.length suffix
    && String.sub s
         (String.length s - String.length suffix)
         (String.length suffix)
       = suffix
  in
  Alcotest.(check bool) "starts with <svg" true (starts_with "<svg" svg);
  Alcotest.(check bool) "well-terminated" true (ends_with "</svg>\n" svg)

let () =
  Alcotest.run "analysis"
    [
      ( "journal",
        [
          Alcotest.test_case "schedules byte-identical" `Quick
            test_byte_identical_with_journal;
          Alcotest.test_case "hand-computed comm-bound rejection" `Quick
            test_comm_bound_hand_computed;
          Alcotest.test_case "Placed events match the table" `Quick
            test_placed_events_match_startup;
        ] );
      ( "report",
        [ Alcotest.test_case "invariants on fig7" `Quick test_report_invariants ]
      );
      ( "explain",
        [
          Alcotest.test_case "node D provenance" `Quick test_explain;
          Alcotest.test_case "journal-free fallback" `Quick
            test_explain_without_journal;
        ] );
      ( "svg",
        [ Alcotest.test_case "traffic heatmap shape" `Quick test_traffic_svg ]
      );
    ]
